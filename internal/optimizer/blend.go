package optimizer

// Observed-cost blending: the bridge between the static LogCA cost models
// the DSE/pareto machinery and the runtime's device choice plan from, and
// the wall times the feedback store actually measured. Static estimates
// are never discarded — the blend weight ramps with sample confidence and
// is capped, so one anomalous burst of observations cannot fully override
// the model, and cold keys (below the confidence threshold) stay purely
// static.

// maxObservedWeight caps how much of the blended estimate observation may
// contribute: even an arbitrarily confident EWMA keeps a static floor, so
// a workload shift is re-learned from a model-anchored estimate instead of
// a fully unmoored one.
const maxObservedWeight = 0.75

// BlendedSeconds blends a static cost-model estimate with an observed mean
// (both in seconds) by sample confidence: below confident samples the
// static estimate is returned untouched; above it the observed weight is
// samples/(samples+confident), capped at maxObservedWeight. Non-positive
// observed values (nothing measured) also fall back to the static
// estimate.
func BlendedSeconds(static, observed float64, samples, confident int64) float64 {
	if confident <= 0 {
		confident = 1
	}
	if samples < confident || observed <= 0 {
		return static
	}
	w := float64(samples) / float64(samples+confident)
	if w > maxObservedWeight {
		w = maxObservedWeight
	}
	return (1-w)*static + w*observed
}
