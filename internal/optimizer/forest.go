package optimizer

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file implements randomized decision forests for regression from
// scratch (Breiman 2001) — the surrogate predictor of the active-learning
// loop (§IV-C1: "one can use randomized decision forests as the base
// predictors").

// ErrForest reports invalid training input.
var ErrForest = errors.New("optimizer: forest")

// treeNode is one CART node.
type treeNode struct {
	feature int
	thresh  float64
	left    *treeNode
	right   *treeNode
	value   float64 // leaf prediction
	leaf    bool
}

// regTree is one regression tree.
type regTree struct {
	root *treeNode
}

type treeParams struct {
	maxDepth    int
	minLeaf     int
	featureFrac float64
	rng         *rand.Rand
}

func buildTree(xs [][]float64, ys []float64, idx []int, depth int, p treeParams) *treeNode {
	if len(idx) <= p.minLeaf || depth >= p.maxDepth || allSame(ys, idx) {
		return &treeNode{leaf: true, value: meanAt(ys, idx)}
	}
	nf := len(xs[0])
	nTry := int(math.Ceil(p.featureFrac * float64(nf)))
	if nTry < 1 {
		nTry = 1
	}
	features := p.rng.Perm(nf)[:nTry]

	bestVar := math.Inf(1)
	bestFeature, bestThresh := -1, 0.0
	for _, f := range features {
		vals := make([]float64, 0, len(idx))
		for _, i := range idx {
			vals = append(vals, xs[i][f])
		}
		sort.Float64s(vals)
		for k := 1; k < len(vals); k++ {
			if vals[k] == vals[k-1] {
				continue
			}
			th := (vals[k] + vals[k-1]) / 2
			v := splitVariance(xs, ys, idx, f, th)
			if v < bestVar {
				bestVar, bestFeature, bestThresh = v, f, th
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, value: meanAt(ys, idx)}
	}
	var li, ri []int
	for _, i := range idx {
		if xs[i][bestFeature] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &treeNode{leaf: true, value: meanAt(ys, idx)}
	}
	return &treeNode{
		feature: bestFeature,
		thresh:  bestThresh,
		left:    buildTree(xs, ys, li, depth+1, p),
		right:   buildTree(xs, ys, ri, depth+1, p),
	}
}

func splitVariance(xs [][]float64, ys []float64, idx []int, f int, th float64) float64 {
	var ln, rn int
	var lSum, rSum, lSq, rSq float64
	for _, i := range idx {
		y := ys[i]
		if xs[i][f] <= th {
			ln++
			lSum += y
			lSq += y * y
		} else {
			rn++
			rSum += y
			rSq += y * y
		}
	}
	variance := func(n int, sum, sq float64) float64 {
		if n == 0 {
			return 0
		}
		m := sum / float64(n)
		return sq/float64(n) - m*m
	}
	total := float64(ln + rn)
	return float64(ln)/total*variance(ln, lSum, lSq) + float64(rn)/total*variance(rn, rSum, rSq)
}

func allSame(ys []float64, idx []int) bool {
	for i := 1; i < len(idx); i++ {
		if ys[idx[i]] != ys[idx[0]] {
			return false
		}
	}
	return true
}

func meanAt(ys []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += ys[i]
	}
	return s / float64(len(idx))
}

func (t *regTree) predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Forest is a bagged ensemble of regression trees.
type Forest struct {
	trees []*regTree
}

// ForestConfig tunes training. The zero value selects sensible defaults.
type ForestConfig struct {
	Trees       int     // default 24
	MaxDepth    int     // default 10
	MinLeaf     int     // default 2
	FeatureFrac float64 // default 0.7
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.Trees <= 0 {
		c.Trees = 24
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.FeatureFrac <= 0 || c.FeatureFrac > 1 {
		c.FeatureFrac = 0.7
	}
	return c
}

// TrainForest fits a random forest to (xs, ys) with bootstrap sampling.
func TrainForest(rng *rand.Rand, xs [][]float64, ys []float64, cfg ForestConfig) (*Forest, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d samples, %d labels", ErrForest, len(xs), len(ys))
	}
	for _, x := range xs {
		if len(x) != len(xs[0]) {
			return nil, fmt.Errorf("%w: ragged features", ErrForest)
		}
	}
	cfg = cfg.withDefaults()
	f := &Forest{trees: make([]*regTree, 0, cfg.Trees)}
	n := len(xs)
	for t := 0; t < cfg.Trees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		p := treeParams{maxDepth: cfg.MaxDepth, minLeaf: cfg.MinLeaf, featureFrac: cfg.FeatureFrac, rng: rng}
		f.trees = append(f.trees, &regTree{root: buildTree(xs, ys, idx, 0, p)})
	}
	return f, nil
}

// Predict returns the forest's mean prediction for x.
func (f *Forest) Predict(x []float64) float64 {
	var s float64
	for _, t := range f.trees {
		s += t.predict(x)
	}
	return s / float64(len(f.trees))
}

// R2 computes the coefficient of determination on a held-out set — the
// "accuracy of the prediction model" tracked by the active-learning loop.
func (f *Forest) R2(xs [][]float64, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssRes, ssTot float64
	for i, x := range xs {
		d := ys[i] - f.Predict(x)
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
