// Package optimizer implements the optimization machinery of Polystore++
// (§IV-C): multi-objective cost-based decisions for the middleware (which
// device runs which kernel) and black-box design-space exploration with an
// active-learning loop over a random-forest surrogate — the HyperMapper
// role in the paper, evaluated against random sampling in Figure 8.
//
// All objectives are minimized.
package optimizer

import (
	"errors"
	"fmt"
	"sort"
)

// Point is one evaluated configuration with its objective values.
type Point struct {
	Config []int     // one value index per parameter
	Objs   []float64 // minimized objectives, e.g. (latency, energy)
}

// ErrSpace reports invalid spaces or configurations.
var ErrSpace = errors.New("optimizer: design space")

// Dominates reports whether a dominates b: a is no worse in every objective
// and strictly better in at least one.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	strictly := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strictly = true
		}
	}
	return strictly
}

// ParetoFront returns the non-dominated subset of pts, sorted by the first
// objective.
func ParetoFront(pts []Point) []Point {
	var front []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if Dominates(q.Objs, p.Objs) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		for k := range front[i].Objs {
			if front[i].Objs[k] != front[j].Objs[k] {
				return front[i].Objs[k] < front[j].Objs[k]
			}
		}
		return false
	})
	// Deduplicate identical objective vectors to keep hypervolume stable.
	out := front[:0]
	for i, p := range front {
		if i > 0 && equalObjs(p.Objs, front[i-1].Objs) {
			continue
		}
		out = append(out, p)
	}
	return out
}

func equalObjs(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Hypervolume2D computes the dominated hypervolume of a two-objective front
// with respect to the reference point (refX, refY). Larger is better.
// Points beyond the reference contribute nothing.
func Hypervolume2D(front []Point, refX, refY float64) (float64, error) {
	for _, p := range front {
		if len(p.Objs) != 2 {
			return 0, fmt.Errorf("%w: Hypervolume2D wants 2 objectives, got %d", ErrSpace, len(p.Objs))
		}
	}
	pts := ParetoFront(front)
	var hv float64
	prevX := refX
	// Sweep from the right (largest obj0) to the left; each point adds a
	// rectangle between its x and the previous x at its y depth.
	for i := len(pts) - 1; i >= 0; i-- {
		x, y := pts[i].Objs[0], pts[i].Objs[1]
		if x >= refX || y >= refY {
			continue
		}
		if x < prevX {
			hv += (prevX - x) * (refY - y)
			prevX = x
		}
	}
	return hv, nil
}
