package optimizer

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	tests := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict improvement
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{1}, []float64{1, 2}, false}, // length mismatch
	}
	for _, tc := range tests {
		if got := Dominates(tc.a, tc.b); got != tc.want {
			t.Fatalf("Dominates(%v,%v) = %v", tc.a, tc.b, got)
		}
	}
}

func TestParetoFront(t *testing.T) {
	pts := []Point{
		{Objs: []float64{1, 5}},
		{Objs: []float64{2, 2}},
		{Objs: []float64{5, 1}},
		{Objs: []float64{3, 3}}, // dominated by (2,2)
		{Objs: []float64{2, 2}}, // duplicate
	}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front = %v", front)
	}
	if front[0].Objs[0] != 1 || front[2].Objs[0] != 5 {
		t.Fatalf("front order = %v", front)
	}
}

func TestHypervolume2D(t *testing.T) {
	front := []Point{
		{Objs: []float64{1, 3}},
		{Objs: []float64{2, 2}},
		{Objs: []float64{3, 1}},
	}
	hv, err := Hypervolume2D(front, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Rectangles: (4-3)*(4-1)=3, (3-2)*(4-2)=2, (2-1)*(4-3)=1 → 6.
	if hv != 6 {
		t.Fatalf("hv = %v, want 6", hv)
	}
	if _, err := Hypervolume2D([]Point{{Objs: []float64{1}}}, 4, 4); !errors.Is(err, ErrSpace) {
		t.Fatalf("1-objective hv: %v", err)
	}
	// Points beyond the reference contribute nothing.
	hv2, err := Hypervolume2D([]Point{{Objs: []float64{9, 9}}}, 4, 4)
	if err != nil || hv2 != 0 {
		t.Fatalf("out-of-ref hv = %v, %v", hv2, err)
	}
}

// Property: adding points never decreases hypervolume.
func TestPropertyHypervolumeMonotone(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pts []Point
		prev := 0.0
		for i := 0; i < 20; i++ {
			pts = append(pts, Point{Objs: []float64{rng.Float64() * 10, rng.Float64() * 10}})
			hv, err := Hypervolume2D(pts, 10, 10)
			if err != nil {
				return false
			}
			if hv+1e-12 < prev {
				return false
			}
			prev = hv
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForestLearnsSimpleFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 400; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		xs = append(xs, []float64{a, b})
		ys = append(ys, 3*a+b*b)
	}
	fr, err := TrainForest(rng, xs, ys, ForestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r2 := fr.R2(xs, ys); r2 < 0.9 {
		t.Fatalf("train R2 = %v", r2)
	}
	// Held out.
	var hx [][]float64
	var hy []float64
	for i := 0; i < 100; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		hx = append(hx, []float64{a, b})
		hy = append(hy, 3*a+b*b)
	}
	if r2 := fr.R2(hx, hy); r2 < 0.7 {
		t.Fatalf("held-out R2 = %v", r2)
	}
}

func TestForestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := TrainForest(rng, nil, nil, ForestConfig{}); !errors.Is(err, ErrForest) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := TrainForest(rng, [][]float64{{1}}, []float64{1, 2}, ForestConfig{}); !errors.Is(err, ErrForest) {
		t.Fatalf("mismatch: %v", err)
	}
	if _, err := TrainForest(rng, [][]float64{{1}, {1, 2}}, []float64{1, 2}, ForestConfig{}); !errors.Is(err, ErrForest) {
		t.Fatalf("ragged: %v", err)
	}
}

func TestForestConstantTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{7, 7, 7, 7}
	fr, err := TrainForest(rng, xs, ys, ForestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := fr.Predict([]float64{2.5}); math.Abs(got-7) > 1e-9 {
		t.Fatalf("constant prediction = %v", got)
	}
	if fr.R2(xs, ys) != 1 {
		t.Fatal("constant R2 should be 1")
	}
}

// toySpace is a 2-param space with a known analytic objective.
func toySpace() (Space, Evaluator) {
	vals := make([]string, 16)
	for i := range vals {
		vals[i] = string(rune('a' + i))
	}
	s := Space{Params: []Param{
		{Name: "x", Values: vals},
		{Name: "y", Values: vals},
	}}
	eval := func(cfg []int) ([]float64, error) {
		x, y := float64(cfg[0]), float64(cfg[1])
		// Conflicting objectives: latency falls with x, energy rises with x.
		return []float64{128 - 8*x + y, 8*x + y}, nil
	}
	return s, eval
}

func TestSpaceBasics(t *testing.T) {
	s, _ := toySpace()
	if s.Size() != 256 {
		t.Fatalf("Size = %d", s.Size())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Space{}).Validate(); !errors.Is(err, ErrSpace) {
		t.Fatalf("empty space: %v", err)
	}
	if err := (Space{Params: []Param{{Name: "p"}}}).Validate(); !errors.Is(err, ErrSpace) {
		t.Fatalf("empty values: %v", err)
	}
	if got := s.Describe([]int{1, 2}); got != "x=b y=c" {
		t.Fatalf("Describe = %q", got)
	}
}

func TestRandomSearchNoRepeats(t *testing.T) {
	s, eval := toySpace()
	pts, err := RandomSearch(rand.New(rand.NewSource(4)), s, eval, 30)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pts {
		k := configKey(p.Config)
		if seen[k] {
			t.Fatal("random search repeated a config")
		}
		seen[k] = true
	}
	if len(pts) != 30 {
		t.Fatalf("evaluated %d", len(pts))
	}
}

func TestActiveLearnFindsFront(t *testing.T) {
	s, eval := toySpace()
	res, err := ActiveLearn(rand.New(rand.NewSource(5)), s, eval, ALConfig{
		InitSamples: 8, Iterations: 4, BatchSize: 4, PoolSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 || len(res.Evaluated) == 0 {
		t.Fatal("empty result")
	}
	// The true front is the y=0 line; with a small budget the learner must
	// at least have pulled several front points near it.
	near := 0
	for _, p := range res.Front {
		if p.Config[1] <= 3 {
			near++
		}
	}
	if near < len(res.Front)/2 || near == 0 {
		t.Fatalf("only %d of %d front points near the optimum", near, len(res.Front))
	}
	if len(res.SurrogateR2) != 2 {
		t.Fatalf("R2 = %v", res.SurrogateR2)
	}
}

func TestActiveLearnCompetitiveWithRandom(t *testing.T) {
	// On a tiny smooth 2-D space, random sampling is a strong baseline; the
	// active learner must at least match it on average (its decisive wins
	// show up on the larger spaces of experiment E10).
	s, eval := toySpace()
	var rsSum, alSum float64
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		rs, err := RandomSearch(rand.New(rand.NewSource(seed)), s, eval, 20)
		if err != nil {
			t.Fatal(err)
		}
		rsHV, _ := Hypervolume2D(ParetoFront(rs), 150, 150)
		al, err := ActiveLearn(rand.New(rand.NewSource(seed)), s, eval, ALConfig{
			InitSamples: 8, Iterations: 3, BatchSize: 4, PoolSize: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		alHV, _ := Hypervolume2D(al.Front, 150, 150)
		rsSum += rsHV
		alSum += alHV
	}
	if alSum < rsSum*0.97 {
		t.Fatalf("active learning mean HV %.1f well below random %.1f", alSum/trials, rsSum/trials)
	}
}
