package optimizer

import (
	"fmt"
	"math/rand"
)

// Param is one dimension of the design space: a named list of discrete
// choices (categorical or ordinal — both are index-encoded, matching the
// paper's observation that such variables preclude gradient methods).
type Param struct {
	Name   string
	Values []string
}

// Space is the design space X of equation (1) in the paper.
type Space struct {
	Params []Param
}

// Size returns the number of configurations in the space.
func (s Space) Size() int64 {
	n := int64(1)
	for _, p := range s.Params {
		n *= int64(len(p.Values))
	}
	return n
}

// Validate checks the space is non-degenerate.
func (s Space) Validate() error {
	if len(s.Params) == 0 {
		return fmt.Errorf("%w: no parameters", ErrSpace)
	}
	for _, p := range s.Params {
		if len(p.Values) == 0 {
			return fmt.Errorf("%w: parameter %q has no values", ErrSpace, p.Name)
		}
	}
	return nil
}

// Describe renders a config as name=value pairs.
func (s Space) Describe(config []int) string {
	out := ""
	for i, p := range s.Params {
		if i > 0 {
			out += " "
		}
		v := "?"
		if i < len(config) && config[i] >= 0 && config[i] < len(p.Values) {
			v = p.Values[config[i]]
		}
		out += p.Name + "=" + v
	}
	return out
}

// Evaluator runs one configuration and returns its (minimized) objectives.
// This is the black-box f of equation (1): in Polystore++ it executes the
// workload under the configuration and reports latency and energy.
type Evaluator func(config []int) ([]float64, error)

// randomConfig samples a uniform configuration.
func randomConfig(rng *rand.Rand, s Space) []int {
	cfg := make([]int, len(s.Params))
	for i, p := range s.Params {
		cfg[i] = rng.Intn(len(p.Values))
	}
	return cfg
}

func configKey(cfg []int) string {
	b := make([]byte, 0, len(cfg)*3)
	for _, v := range cfg {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}

func configFloats(cfg []int) []float64 {
	out := make([]float64, len(cfg))
	for i, v := range cfg {
		out[i] = float64(v)
	}
	return out
}

// RandomSearch evaluates n uniform random configurations (without repeats)
// and returns all evaluated points — the baseline of Figure 8.
func RandomSearch(rng *rand.Rand, s Space, eval Evaluator, n int) ([]Point, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	seen := make(map[string]bool, n)
	var out []Point
	attempts := 0
	for len(out) < n && attempts < n*20 {
		attempts++
		cfg := randomConfig(rng, s)
		k := configKey(cfg)
		if seen[k] {
			continue
		}
		seen[k] = true
		objs, err := eval(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{Config: cfg, Objs: objs})
	}
	return out, nil
}

// ALResult is the outcome of the active-learning loop.
type ALResult struct {
	Evaluated []Point
	Front     []Point
	// SurrogateR2 is the final per-objective fit quality on the evaluated
	// set (optimistic but useful as a sanity signal).
	SurrogateR2 []float64
}

// ALConfig tunes ActiveLearn. Zero values pick defaults.
type ALConfig struct {
	InitSamples int // default 10: random warm-up evaluations
	Iterations  int // default 5: active-learning rounds
	BatchSize   int // default 5: evaluations per round
	PoolSize    int // default 200: candidate configurations scored per round
	Forest      ForestConfig
}

func (c ALConfig) withDefaults() ALConfig {
	if c.InitSamples <= 0 {
		c.InitSamples = 10
	}
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 5
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 200
	}
	return c
}

// ActiveLearn runs the active-learning design-space exploration of Figure 8:
// random warm-up, then iterations of (train per-objective forests → score a
// candidate pool → compute the predicted Pareto front → evaluate the
// predicted-optimal batch → retrain on everything).
func ActiveLearn(rng *rand.Rand, s Space, eval Evaluator, cfg ALConfig) (*ALResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	evaluated := make([]Point, 0, cfg.InitSamples+cfg.Iterations*cfg.BatchSize)
	seen := make(map[string]bool)
	evalOnce := func(c []int) error {
		k := configKey(c)
		if seen[k] {
			return nil
		}
		seen[k] = true
		objs, err := eval(c)
		if err != nil {
			return err
		}
		evaluated = append(evaluated, Point{Config: c, Objs: objs})
		return nil
	}

	for i := 0; i < cfg.InitSamples; i++ {
		if err := evalOnce(randomConfig(rng, s)); err != nil {
			return nil, err
		}
	}
	if len(evaluated) == 0 {
		return nil, fmt.Errorf("%w: warm-up produced no evaluations", ErrSpace)
	}
	nObjs := len(evaluated[0].Objs)

	var forests []*Forest
	for it := 0; it < cfg.Iterations; it++ {
		// Train one forest per objective on everything evaluated so far.
		xs := make([][]float64, len(evaluated))
		for i, p := range evaluated {
			xs[i] = configFloats(p.Config)
		}
		forests = forests[:0]
		for o := 0; o < nObjs; o++ {
			ys := make([]float64, len(evaluated))
			for i, p := range evaluated {
				ys[i] = p.Objs[o]
			}
			f, err := TrainForest(rng, xs, ys, cfg.Forest)
			if err != nil {
				return nil, err
			}
			forests = append(forests, f)
		}
		// Score a random candidate pool with the surrogates.
		var pool []Point
		for i := 0; i < cfg.PoolSize; i++ {
			c := randomConfig(rng, s)
			if seen[configKey(c)] {
				continue
			}
			x := configFloats(c)
			objs := make([]float64, nObjs)
			for o, f := range forests {
				objs[o] = f.Predict(x)
			}
			pool = append(pool, Point{Config: c, Objs: objs})
		}
		// Evaluate points spread across the predicted Pareto front (taking
		// only its head would explore a single corner of the trade-off), and
		// keep one uniformly random evaluation per round for exploration.
		predicted := ParetoFront(pool)
		batch := 0
		guided := cfg.BatchSize - 1
		if guided < 1 {
			guided = 1
		}
		if len(predicted) > 0 {
			step := float64(len(predicted)) / float64(guided)
			if step < 1 {
				step = 1
			}
			for i := 0.0; int(i) < len(predicted) && batch < guided; i += step {
				if err := evalOnce(predicted[int(i)].Config); err != nil {
					return nil, err
				}
				batch++
			}
		}
		if batch < cfg.BatchSize {
			if err := evalOnce(randomConfig(rng, s)); err != nil {
				return nil, err
			}
			batch++
		}
		// Top up from the rest of the pool if the front was small.
		for _, p := range pool {
			if batch >= cfg.BatchSize {
				break
			}
			if seen[configKey(p.Config)] {
				continue
			}
			if err := evalOnce(p.Config); err != nil {
				return nil, err
			}
			batch++
		}
	}

	res := &ALResult{Evaluated: evaluated, Front: ParetoFront(evaluated)}
	if len(forests) == nObjs {
		xs := make([][]float64, len(evaluated))
		for i, p := range evaluated {
			xs[i] = configFloats(p.Config)
		}
		for o, f := range forests {
			ys := make([]float64, len(evaluated))
			for i, p := range evaluated {
				ys[i] = p.Objs[o]
			}
			res.SurrogateR2 = append(res.SurrogateR2, f.R2(xs, ys))
			_ = o
		}
	}
	return res, nil
}
