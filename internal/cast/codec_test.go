package cast

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCSVRoundTrip(t *testing.T) {
	b := testBatch(t, 25)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, b.Schema())
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !got.Equal(b) {
		t.Fatal("CSV round trip changed data")
	}
}

func TestCSVHeaderMismatch(t *testing.T) {
	b := testBatch(t, 2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, b); err != nil {
		t.Fatal(err)
	}
	wrong := MustSchema(
		Column{Name: "nope", Type: Int64},
		Column{Name: "score", Type: Float64},
		Column{Name: "name", Type: String},
		Column{Name: "active", Type: Bool},
		Column{Name: "ts", Type: Timestamp},
	)
	if _, err := ReadCSV(&buf, wrong); !errors.Is(err, ErrCodec) {
		t.Fatalf("want ErrCodec, got %v", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	b := testBatch(t, 100)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !got.Equal(b) {
		t.Fatal("binary round trip changed data")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a batch at all")); !errors.Is(err, ErrCodec) {
		t.Fatalf("want ErrCodec, got %v", err)
	}
	if _, err := ReadBinary(strings.NewReader("")); !errors.Is(err, ErrCodec) {
		t.Fatalf("empty input: want ErrCodec, got %v", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	b := testBatch(t, 10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{len(raw) / 2, len(raw) - 1, 17} {
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncated at %d bytes should fail", cut)
		}
	}
}

func TestStreamChunks(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	chunks := []*Batch{testBatch(t, 5), testBatch(t, 0), testBatch(t, 17)}
	for _, c := range chunks {
		if err := sw.WriteChunk(c); err != nil {
			t.Fatalf("WriteChunk: %v", err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sr := NewStreamReader(&buf)
	for i, want := range chunks {
		got, err := sr.ReadChunk()
		if err != nil {
			t.Fatalf("ReadChunk %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("chunk %d differs", i)
		}
	}
	if _, err := sr.ReadChunk(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF after stream end, got %v", err)
	}
}

// randomBatch builds a pseudo-random batch for property tests.
func randomBatch(rng *rand.Rand, rows int) *Batch {
	s := MustSchema(
		Column{Name: "i", Type: Int64},
		Column{Name: "f", Type: Float64},
		Column{Name: "s", Type: String},
		Column{Name: "b", Type: Bool},
	)
	b := NewBatch(s, rows)
	for r := 0; r < rows; r++ {
		var sb strings.Builder
		for l := rng.Intn(12); l > 0; l-- {
			sb.WriteByte(byte(' ' + rng.Intn(95)))
		}
		// Avoid NaN: Equal uses == which would make round-trip comparison fail
		// for reasons unrelated to the codec.
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) {
			f = 0
		}
		if err := b.AppendRow(rng.Int63()-rng.Int63(), f, sb.String(), rng.Intn(2) == 0); err != nil {
			panic(err)
		}
	}
	return b
}

func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBatch(rng, int(n)%64)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, b); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return got.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCSVRoundTripFixedCols(t *testing.T) {
	// CSV cannot faithfully round-trip every float bit pattern via %g plus
	// arbitrary control characters in strings, so the property is restricted
	// to the value domain engines actually emit: finite floats and printable
	// strings — exactly what randomBatch generates.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBatch(rng, int(n)%48)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, b); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, b.Schema())
		if err != nil {
			return false
		}
		return got.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySortIsPermutationAndOrdered(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBatch(rng, int(n)%100+1)
		sorted, err := b.SortBy(SortKey{Col: "i"})
		if err != nil {
			return false
		}
		if sorted.Rows() != b.Rows() {
			return false
		}
		ints, _ := sorted.Ints(0)
		for j := 1; j < len(ints); j++ {
			if ints[j-1] > ints[j] {
				return false
			}
		}
		// Permutation check via multiset sum/xor fingerprints.
		var sumA, sumB, xorA, xorB int64
		orig, _ := b.Ints(0)
		for _, v := range orig {
			sumA += v
			xorA ^= v
		}
		for _, v := range ints {
			sumB += v
			xorB ^= v
		}
		return sumA == sumB && xorA == xorB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHashRowKeyDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBatch(rng, 8)
		cols := []int{0, 2}
		h1, err := b.HashRowKey(3, cols)
		if err != nil {
			return false
		}
		h2, err := b.HashRowKey(3, cols)
		if err != nil {
			return false
		}
		return h1 == h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGatherSliceAgree(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int(n)%50 + 2
		b := randomBatch(rng, rows)
		lo := rng.Intn(rows)
		hi := lo + rng.Intn(rows-lo)
		sl, err := b.Slice(lo, hi)
		if err != nil {
			return false
		}
		idx := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		g, err := b.Gather(idx)
		if err != nil {
			return false
		}
		return sl.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBinaryEncode(b *testing.B) {
	batch := benchBatch(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSVEncode(b *testing.B) {
	batch := benchBatch(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, batch); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBatch(n int) *Batch {
	s := MustSchema(
		Column{Name: "a", Type: Int64},
		Column{Name: "b", Type: Int64},
		Column{Name: "c", Type: Float64},
		Column{Name: "d", Type: Float64},
	)
	b := NewBatch(s, n)
	for i := 0; i < n; i++ {
		if err := b.AppendRow(int64(i), int64(i*7), float64(i)*1.5, float64(i)*2.5); err != nil {
			panic(err)
		}
	}
	return b
}
