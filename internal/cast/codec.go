package cast

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
)

// The wire formats in this file are what the data migrator moves between
// engines. Two formats exist deliberately (§III-A3 of the paper):
//
//   - CSV: the naive portable path every engine supports. Expensive because
//     every value round-trips through text.
//   - Binary columnar ("pipe format"): the PipeGen-style optimized binary
//     layout streamed over network pipes.

// Binary format constants.
const (
	binaryMagic   = uint32(0x504c5342) // "PLSB"
	binaryVersion = uint16(1)
)

// ErrCodec wraps malformed-input failures from the decoders.
var ErrCodec = errors.New("cast: codec")

// WriteCSV writes the batch in CSV form with a header row of column names.
func WriteCSV(w io.Writer, b *Batch) error {
	cw := csv.NewWriter(w)
	s := b.Schema()
	head := make([]string, s.Len())
	for i := range head {
		head[i] = s.Col(i).Name
	}
	if err := cw.Write(head); err != nil {
		return fmt.Errorf("csv header: %w", err)
	}
	rec := make([]string, s.Len())
	for r := 0; r < b.Rows(); r++ {
		for c := 0; c < s.Len(); c++ {
			v, err := b.Value(r, c)
			if err != nil {
				return err
			}
			rec[c] = FormatValue(v)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("csv row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses CSV (with a header row) into a batch with the given schema.
// The header must match the schema's column names in order.
func ReadCSV(r io.Reader, s Schema) (*Batch, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = s.Len()
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: reading csv header: %v", ErrCodec, err)
	}
	for i, name := range head {
		if name != s.Col(i).Name {
			return nil, fmt.Errorf("%w: csv header %q != schema column %q", ErrCodec, name, s.Col(i).Name)
		}
	}
	b := NewBatch(s, 0)
	vals := make([]any, s.Len())
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return b, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: reading csv: %v", ErrCodec, err)
		}
		for i, f := range rec {
			v, err := ParseValue(s.Col(i).Type, f)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		if err := b.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
}

// WriteBinary writes the batch in the columnar binary pipe format:
//
//	magic u32 | version u16 | ncols u16 | nrows u64
//	per column: nameLen u16 | name | type u8
//	per column: payload (fixed-width values back to back; strings as
//	            len u32 + bytes)
func WriteBinary(w io.Writer, b *Batch) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	s := b.Schema()
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], binaryMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], binaryVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(s.Len()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(b.Rows()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for i := 0; i < s.Len(); i++ {
		c := s.Col(i)
		if len(c.Name) > math.MaxUint16 {
			return fmt.Errorf("%w: column name too long", ErrCodec)
		}
		var nl [2]byte
		binary.LittleEndian.PutUint16(nl[:], uint16(len(c.Name)))
		if _, err := bw.Write(nl[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(c.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(c.Type)); err != nil {
			return err
		}
	}
	var scratch [8]byte
	for i := 0; i < s.Len(); i++ {
		switch s.Col(i).Type {
		case Int64, Timestamp:
			ints, _ := b.Ints(i)
			for _, v := range ints {
				binary.LittleEndian.PutUint64(scratch[:], uint64(v))
				if _, err := bw.Write(scratch[:]); err != nil {
					return err
				}
			}
		case Float64:
			flts, _ := b.Floats(i)
			for _, v := range flts {
				binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
				if _, err := bw.Write(scratch[:]); err != nil {
					return err
				}
			}
		case Bool:
			bools, _ := b.Bools(i)
			for _, v := range bools {
				bt := byte(0)
				if v {
					bt = 1
				}
				if err := bw.WriteByte(bt); err != nil {
					return err
				}
			}
		case String:
			strs, _ := b.Strings(i)
			for _, v := range strs {
				binary.LittleEndian.PutUint32(scratch[:4], uint32(len(v)))
				if _, err := bw.Write(scratch[:4]); err != nil {
					return err
				}
				if _, err := bw.WriteString(v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadBinary decodes one batch from the columnar binary pipe format.
func ReadBinary(r io.Reader) (*Batch, error) {
	// Reuse an existing bufio.Reader: wrapping it again would read ahead and
	// strand bytes, corrupting multi-batch streams.
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCodec, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCodec, m)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCodec, v)
	}
	ncols := int(binary.LittleEndian.Uint16(hdr[6:8]))
	nrows := binary.LittleEndian.Uint64(hdr[8:16])
	if nrows > math.MaxInt32*64 {
		return nil, fmt.Errorf("%w: implausible row count %d", ErrCodec, nrows)
	}
	cols := make([]Column, ncols)
	for i := range cols {
		var nl [2]byte
		if _, err := io.ReadFull(br, nl[:]); err != nil {
			return nil, fmt.Errorf("%w: column header: %v", ErrCodec, err)
		}
		nameLen := int(binary.LittleEndian.Uint16(nl[:]))
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("%w: column name: %v", ErrCodec, err)
		}
		tb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: column type: %v", ErrCodec, err)
		}
		t := Type(tb)
		if !t.Valid() {
			return nil, fmt.Errorf("%w: invalid column type %d", ErrCodec, tb)
		}
		cols[i] = Column{Name: string(name), Type: t}
	}
	s, err := NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	n := int(nrows)
	b := NewBatch(s, n)
	var scratch [8]byte
	for i := 0; i < ncols; i++ {
		switch s.Col(i).Type {
		case Int64, Timestamp:
			dst := make([]int64, n)
			for j := 0; j < n; j++ {
				if _, err := io.ReadFull(br, scratch[:]); err != nil {
					return nil, fmt.Errorf("%w: int column %d row %d: %v", ErrCodec, i, j, err)
				}
				dst[j] = int64(binary.LittleEndian.Uint64(scratch[:]))
			}
			b.cols[i].ints = dst
		case Float64:
			dst := make([]float64, n)
			for j := 0; j < n; j++ {
				if _, err := io.ReadFull(br, scratch[:]); err != nil {
					return nil, fmt.Errorf("%w: float column %d row %d: %v", ErrCodec, i, j, err)
				}
				dst[j] = math.Float64frombits(binary.LittleEndian.Uint64(scratch[:]))
			}
			b.cols[i].flts = dst
		case Bool:
			dst := make([]bool, n)
			for j := 0; j < n; j++ {
				bt, err := br.ReadByte()
				if err != nil {
					return nil, fmt.Errorf("%w: bool column %d row %d: %v", ErrCodec, i, j, err)
				}
				dst[j] = bt != 0
			}
			b.cols[i].bools = dst
		case String:
			dst := make([]string, n)
			for j := 0; j < n; j++ {
				if _, err := io.ReadFull(br, scratch[:4]); err != nil {
					return nil, fmt.Errorf("%w: string column %d row %d: %v", ErrCodec, i, j, err)
				}
				slen := binary.LittleEndian.Uint32(scratch[:4])
				sb := make([]byte, slen)
				if _, err := io.ReadFull(br, sb); err != nil {
					return nil, fmt.Errorf("%w: string column %d row %d: %v", ErrCodec, i, j, err)
				}
				dst[j] = string(sb)
			}
			b.cols[i].strs = dst
		}
	}
	b.rows = n
	return b, nil
}

// StreamWriter writes a sequence of batches (chunks) over one connection,
// each length-delimited, so a receiver can process chunks as they arrive —
// the "network pipe" of PipeGen.
type StreamWriter struct {
	w io.Writer
}

// NewStreamWriter returns a StreamWriter over w.
func NewStreamWriter(w io.Writer) *StreamWriter { return &StreamWriter{w: w} }

// WriteChunk writes one batch as a chunk. A zero-row batch is legal.
func (sw *StreamWriter) WriteChunk(b *Batch) error {
	return WriteBinary(sw.w, b)
}

// Close writes the end-of-stream marker (a frame with zero magic).
func (sw *StreamWriter) Close() error {
	var end [4]byte // 4 zero bytes cannot begin a valid frame (magic mismatch)
	_, err := sw.w.Write(end[:])
	return err
}

// StreamReader reads the chunk sequence produced by StreamWriter.
type StreamReader struct {
	br *bufio.Reader
}

// NewStreamReader returns a StreamReader over r.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// ReadChunk returns the next batch, or io.EOF after the end-of-stream
// marker.
func (sr *StreamReader) ReadChunk() (*Batch, error) {
	peek, err := sr.br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("%w: peeking frame: %v", ErrCodec, err)
	}
	if binary.LittleEndian.Uint32(peek) != binaryMagic {
		// End-of-stream marker: consume and report EOF.
		if _, err := sr.br.Discard(4); err != nil {
			return nil, fmt.Errorf("%w: consuming eos: %v", ErrCodec, err)
		}
		return nil, io.EOF
	}
	return ReadBinary(sr.br)
}
