package cast

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
)

// CompareValues orders two boxed values of the same dynamic type. It returns
// -1, 0, or +1. Comparing values of different dynamic types is a programming
// error and reports via the returned error.
func CompareValues(a, b any) (int, error) {
	switch x := a.(type) {
	case int64:
		y, ok := b.(int64)
		if !ok {
			return 0, fmt.Errorf("%w: int64 vs %T", ErrTypeMismatch, b)
		}
		return cmpOrdered(x, y), nil
	case float64:
		y, ok := b.(float64)
		if !ok {
			return 0, fmt.Errorf("%w: float64 vs %T", ErrTypeMismatch, b)
		}
		return cmpOrdered(x, y), nil
	case string:
		y, ok := b.(string)
		if !ok {
			return 0, fmt.Errorf("%w: string vs %T", ErrTypeMismatch, b)
		}
		return cmpOrdered(x, y), nil
	case bool:
		y, ok := b.(bool)
		if !ok {
			return 0, fmt.Errorf("%w: bool vs %T", ErrTypeMismatch, b)
		}
		switch {
		case x == y:
			return 0, nil
		case !x:
			return -1, nil
		default:
			return 1, nil
		}
	default:
		return 0, fmt.Errorf("%w: unsupported value type %T", ErrTypeMismatch, a)
	}
}

func cmpOrdered[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// HashValue hashes one boxed value with FNV-1a, for hash joins and group-by.
func HashValue(v any) uint64 {
	h := fnv.New64a()
	switch x := v.(type) {
	case int64:
		var buf [8]byte
		putUint64(buf[:], uint64(x))
		_, _ = h.Write(buf[:])
	case float64:
		var buf [8]byte
		putUint64(buf[:], math.Float64bits(x))
		_, _ = h.Write(buf[:])
	case string:
		_, _ = h.Write([]byte(x))
	case bool:
		if x {
			_, _ = h.Write([]byte{1})
		} else {
			_, _ = h.Write([]byte{0})
		}
	}
	return h.Sum64()
}

// HashRowKey hashes the values of the given columns of row r, combining the
// per-column hashes so distinct key tuples rarely collide.
func (b *Batch) HashRowKey(r int, cols []int) (uint64, error) {
	const prime = 1099511628211
	var acc uint64 = 14695981039346656037
	for _, c := range cols {
		v, err := b.Value(r, c)
		if err != nil {
			return 0, err
		}
		acc ^= HashValue(v)
		acc *= prime
	}
	return acc, nil
}

// KeyString renders the key columns of row r as a canonical string usable as
// a map key (exact, unlike a hash). The encoding quotes strings so that
// adjacent values cannot alias.
func (b *Batch) KeyString(r int, cols []int) (string, error) {
	out := make([]byte, 0, 16*len(cols))
	for _, c := range cols {
		v, err := b.Value(r, c)
		if err != nil {
			return "", err
		}
		switch x := v.(type) {
		case int64:
			out = strconv.AppendInt(out, x, 10)
		case float64:
			out = strconv.AppendFloat(out, x, 'g', -1, 64)
		case string:
			out = strconv.AppendQuote(out, x)
		case bool:
			out = strconv.AppendBool(out, x)
		}
		out = append(out, '|')
	}
	return string(out), nil
}

// SortKey describes one ordering column for SortBy.
type SortKey struct {
	Col  string
	Desc bool
}

// SortBy returns a new batch with rows ordered by the given keys
// (lexicographically across keys). The sort is stable.
func (b *Batch) SortBy(keys ...SortKey) (*Batch, error) {
	type kc struct {
		idx  int
		desc bool
	}
	kcs := make([]kc, 0, len(keys))
	for _, k := range keys {
		i, err := b.schema.Index(k.Col)
		if err != nil {
			return nil, err
		}
		kcs = append(kcs, kc{idx: i, desc: k.Desc})
	}
	order := make([]int, b.rows)
	for i := range order {
		order[i] = i
	}
	var sortErr error
	sort.SliceStable(order, func(x, y int) bool {
		if sortErr != nil {
			return false
		}
		rx, ry := order[x], order[y]
		for _, k := range kcs {
			vx, err := b.Value(rx, k.idx)
			if err != nil {
				sortErr = err
				return false
			}
			vy, err := b.Value(ry, k.idx)
			if err != nil {
				sortErr = err
				return false
			}
			c, err := CompareValues(vx, vy)
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if k.desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	return b.Gather(order)
}

// FilterRows returns a new batch containing only rows where keep returns
// true. keep receives the row index.
func (b *Batch) FilterRows(keep func(row int) bool) (*Batch, error) {
	idx := make([]int, 0, b.rows)
	for i := 0; i < b.rows; i++ {
		if keep(i) {
			idx = append(idx, i)
		}
	}
	return b.Gather(idx)
}

// FormatValue renders a boxed value for CSV output and debugging.
func FormatValue(v any) string {
	switch x := v.(type) {
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// ParseValue parses the textual form of a value for the given column type,
// the inverse of FormatValue.
func ParseValue(t Type, s string) (any, error) {
	switch t {
	case Int64, Timestamp:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %q as %s: %v", ErrBadValue, s, t, err)
		}
		return v, nil
	case Float64:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %q as %s: %v", ErrBadValue, s, t, err)
		}
		return v, nil
	case String:
		return s, nil
	case Bool:
		v, err := strconv.ParseBool(s)
		if err != nil {
			return nil, fmt.Errorf("%w: %q as %s: %v", ErrBadValue, s, t, err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadValue, int(t))
	}
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
