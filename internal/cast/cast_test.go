package cast

import (
	"errors"
	"fmt"
	"testing"
)

func testSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Type: Int64},
		Column{Name: "score", Type: Float64},
		Column{Name: "name", Type: String},
		Column{Name: "active", Type: Bool},
		Column{Name: "ts", Type: Timestamp},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func testBatch(t *testing.T, n int) *Batch {
	t.Helper()
	b := NewBatch(testSchema(t), n)
	for i := 0; i < n; i++ {
		err := b.AppendRow(int64(i), float64(i)*0.5, "name-"+string(rune('a'+i%26)), i%2 == 0, int64(1000+i))
		if err != nil {
			t.Fatalf("AppendRow(%d): %v", i, err)
		}
	}
	return b
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(Column{Name: "a", Type: Int64}, Column{Name: "a", Type: String})
	if !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("want ErrDuplicateName, got %v", err)
	}
}

func TestNewSchemaRejectsInvalidType(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a", Type: Type(0)}); err == nil {
		t.Fatal("want error for zero type")
	}
	if _, err := NewSchema(Column{Name: "a", Type: Type(99)}); err == nil {
		t.Fatal("want error for out-of-range type")
	}
}

func TestSchemaIndexAndHas(t *testing.T) {
	s := testSchema(t)
	i, err := s.Index("name")
	if err != nil || i != 2 {
		t.Fatalf("Index(name) = %d, %v; want 2, nil", i, err)
	}
	if _, err := s.Index("missing"); !errors.Is(err, ErrColumnNotFound) {
		t.Fatalf("want ErrColumnNotFound, got %v", err)
	}
	if !s.Has("id") || s.Has("nope") {
		t.Fatal("Has misbehaves")
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project("name", "id")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Len() != 2 || p.Col(0).Name != "name" || p.Col(1).Name != "id" {
		t.Fatalf("bad projection: %s", p)
	}
	if _, err := s.Project("ghost"); !errors.Is(err, ErrColumnNotFound) {
		t.Fatalf("want ErrColumnNotFound, got %v", err)
	}
}

func TestSchemaRenameAndConcat(t *testing.T) {
	s := testSchema(t)
	r, err := s.Rename("id", "pid")
	if err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if !r.Has("pid") || r.Has("id") {
		t.Fatalf("rename failed: %s", r)
	}
	if _, err := s.Concat(s); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("self-concat should fail with ErrDuplicateName, got %v", err)
	}
	other := MustSchema(Column{Name: "x", Type: Int64})
	c, err := s.Concat(other)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if c.Len() != s.Len()+1 {
		t.Fatalf("Concat len = %d", c.Len())
	}
}

func TestAppendRowTypeChecks(t *testing.T) {
	b := NewBatch(testSchema(t), 0)
	tests := []struct {
		name string
		vals []any
	}{
		{"wrong arity", []any{int64(1)}},
		{"string for int", []any{"x", 0.5, "n", true, int64(1)}},
		{"int for string", []any{int64(1), 0.5, int64(9), true, int64(1)}},
		{"int for bool", []any{int64(1), 0.5, "n", int64(1), int64(1)}},
		{"bool for float", []any{int64(1), true, "n", true, int64(1)}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := b.AppendRow(tc.vals...); err == nil {
				t.Fatalf("AppendRow(%v) should fail", tc.vals)
			}
			if b.Rows() != 0 {
				t.Fatalf("failed append mutated batch: rows=%d", b.Rows())
			}
		})
	}
	// The failed appends above must not leave partial column data behind.
	if err := b.AppendRow(int64(1), 0.5, "n", true, int64(1)); err != nil {
		t.Fatalf("valid AppendRow after failures: %v", err)
	}
	for c := 0; c < b.Schema().Len(); c++ {
		if _, err := b.Value(0, c); err != nil {
			t.Fatalf("column %d corrupt after rollback: %v", c, err)
		}
	}
}

func TestAppendRowAcceptsGoInts(t *testing.T) {
	b := NewBatch(testSchema(t), 0)
	if err := b.AppendRow(7, 3, "n", false, 12); err != nil {
		t.Fatalf("AppendRow with plain ints: %v", err)
	}
	v, err := b.Value(0, 0)
	if err != nil || v.(int64) != 7 {
		t.Fatalf("Value = %v, %v", v, err)
	}
	f, err := b.Value(0, 1)
	if err != nil || f.(float64) != 3 {
		t.Fatalf("float Value = %v, %v", f, err)
	}
}

func TestValueAndRow(t *testing.T) {
	b := testBatch(t, 10)
	row, err := b.Row(3)
	if err != nil {
		t.Fatalf("Row: %v", err)
	}
	if row[0].(int64) != 3 || row[1].(float64) != 1.5 {
		t.Fatalf("bad row: %v", row)
	}
	if _, err := b.Row(10); !errors.Is(err, ErrRowOutOfRange) {
		t.Fatalf("want ErrRowOutOfRange, got %v", err)
	}
	if _, err := b.Value(-1, 0); !errors.Is(err, ErrRowOutOfRange) {
		t.Fatalf("want ErrRowOutOfRange, got %v", err)
	}
}

func TestTypedAccessors(t *testing.T) {
	b := testBatch(t, 4)
	ints, err := b.Ints(0)
	if err != nil || len(ints) != 4 {
		t.Fatalf("Ints: %v %v", ints, err)
	}
	if _, err := b.Ints(1); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("Ints on float col: %v", err)
	}
	if _, err := b.Floats(0); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("Floats on int col: %v", err)
	}
	if _, err := b.Strings(0); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("Strings on int col: %v", err)
	}
	if _, err := b.Bools(0); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("Bools on int col: %v", err)
	}
	ts, err := b.Ints(4) // Timestamp column readable via Ints
	if err != nil || ts[0] != 1000 {
		t.Fatalf("timestamp Ints: %v %v", ts, err)
	}
}

func TestAppendBatchAndSlice(t *testing.T) {
	a := testBatch(t, 5)
	b := testBatch(t, 3)
	if err := a.AppendBatch(b); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if a.Rows() != 8 {
		t.Fatalf("rows = %d, want 8", a.Rows())
	}
	sl, err := a.Slice(5, 8)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if !sl.Equal(testBatch(t, 3)) {
		t.Fatal("slice of appended region differs from source")
	}
	if _, err := a.Slice(3, 2); !errors.Is(err, ErrRowOutOfRange) {
		t.Fatalf("bad slice bounds: %v", err)
	}
	mismatch := NewBatch(MustSchema(Column{Name: "z", Type: Int64}), 0)
	if err := a.AppendBatch(mismatch); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("schema mismatch append: %v", err)
	}
}

func TestGather(t *testing.T) {
	b := testBatch(t, 6)
	g, err := b.Gather([]int{5, 0, 3})
	if err != nil {
		t.Fatalf("Gather: %v", err)
	}
	ids, _ := g.Ints(0)
	if ids[0] != 5 || ids[1] != 0 || ids[2] != 3 {
		t.Fatalf("gather order wrong: %v", ids)
	}
	if _, err := b.Gather([]int{99}); !errors.Is(err, ErrRowOutOfRange) {
		t.Fatalf("out-of-range gather: %v", err)
	}
}

func TestProjectBatch(t *testing.T) {
	b := testBatch(t, 4)
	p, err := b.Project("name", "id")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.Rows() != 4 || p.Schema().Len() != 2 {
		t.Fatalf("projection shape wrong: %d rows, %d cols", p.Rows(), p.Schema().Len())
	}
	ids, err := p.Ints(1)
	if err != nil || ids[2] != 2 {
		t.Fatalf("projected ids: %v %v", ids, err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := testBatch(t, 3)
	c := b.Clone()
	ints, _ := b.Ints(0)
	ints[0] = 999
	cInts, _ := c.Ints(0)
	if cInts[0] == 999 {
		t.Fatal("Clone shares storage with source")
	}
}

func TestByteSize(t *testing.T) {
	b := testBatch(t, 10)
	// 3 fixed 8-byte cols + bool col (1B) + strings ("name-X" = 6B + 8B overhead).
	want := int64(10*8*3 + 10*1 + 10*(6+8))
	if got := b.ByteSize(); got != want {
		t.Fatalf("ByteSize = %d, want %d", got, want)
	}
}

func TestSortBy(t *testing.T) {
	b := NewBatch(MustSchema(Column{Name: "k", Type: Int64}, Column{Name: "v", Type: String}), 0)
	for _, kv := range []struct {
		k int64
		v string
	}{{3, "c"}, {1, "a"}, {2, "b"}, {1, "a2"}} {
		if err := b.AppendRow(kv.k, kv.v); err != nil {
			t.Fatal(err)
		}
	}
	sorted, err := b.SortBy(SortKey{Col: "k"})
	if err != nil {
		t.Fatalf("SortBy: %v", err)
	}
	ks, _ := sorted.Ints(0)
	vs, _ := sorted.Strings(1)
	if ks[0] != 1 || ks[1] != 1 || ks[2] != 2 || ks[3] != 3 {
		t.Fatalf("not sorted: %v", ks)
	}
	if vs[0] != "a" || vs[1] != "a2" {
		t.Fatalf("sort not stable: %v", vs)
	}
	desc, err := b.SortBy(SortKey{Col: "k", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	dks, _ := desc.Ints(0)
	if dks[0] != 3 || dks[3] != 1 {
		t.Fatalf("desc sort wrong: %v", dks)
	}
	if _, err := b.SortBy(SortKey{Col: "missing"}); !errors.Is(err, ErrColumnNotFound) {
		t.Fatalf("sort by missing column: %v", err)
	}
}

func TestFilterRows(t *testing.T) {
	b := testBatch(t, 10)
	ids, _ := b.Ints(0)
	f, err := b.FilterRows(func(r int) bool { return ids[r]%2 == 0 })
	if err != nil {
		t.Fatalf("FilterRows: %v", err)
	}
	if f.Rows() != 5 {
		t.Fatalf("filtered rows = %d, want 5", f.Rows())
	}
}

func TestCompareValues(t *testing.T) {
	tests := []struct {
		a, b any
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), int64(2), 0},
		{int64(3), int64(2), 1},
		{1.5, 2.5, -1},
		{"a", "b", -1},
		{"b", "b", 0},
		{false, true, -1},
		{true, true, 0},
		{true, false, 1},
	}
	for _, tc := range tests {
		got, err := CompareValues(tc.a, tc.b)
		if err != nil {
			t.Fatalf("CompareValues(%v,%v): %v", tc.a, tc.b, err)
		}
		if got != tc.want {
			t.Fatalf("CompareValues(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	if _, err := CompareValues(int64(1), "x"); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("mixed compare: %v", err)
	}
	if _, err := CompareValues(struct{}{}, struct{}{}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("unsupported compare: %v", err)
	}
}

func TestKeyStringDistinguishesAdjacentValues(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: String}, Column{Name: "b", Type: String})
	b := NewBatch(s, 0)
	if err := b.AppendRow("x|", "y"); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow("x", "|y"); err != nil {
		t.Fatal(err)
	}
	k0, err := b.KeyString(0, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	k1, err := b.KeyString(1, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if k0 == k1 {
		t.Fatalf("keys alias: %q", k0)
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	tests := []struct {
		t Type
		v any
	}{
		{Int64, int64(-42)},
		{Float64, 3.25},
		{String, "hello, world"},
		{Bool, true},
		{Timestamp, int64(1234567890)},
	}
	for _, tc := range tests {
		s := FormatValue(tc.v)
		got, err := ParseValue(tc.t, s)
		if err != nil {
			t.Fatalf("ParseValue(%s, %q): %v", tc.t, s, err)
		}
		if got != tc.v {
			t.Fatalf("round trip %v -> %q -> %v", tc.v, s, got)
		}
	}
	if _, err := ParseValue(Int64, "zzz"); !errors.Is(err, ErrBadValue) {
		t.Fatalf("bad int parse: %v", err)
	}
	if _, err := ParseValue(Float64, "zzz"); !errors.Is(err, ErrBadValue) {
		t.Fatalf("bad float parse: %v", err)
	}
	if _, err := ParseValue(Bool, "zzz"); !errors.Is(err, ErrBadValue) {
		t.Fatalf("bad bool parse: %v", err)
	}
}

func TestTypeStringAndWidth(t *testing.T) {
	if Int64.String() != "int64" || Timestamp.String() != "timestamp" {
		t.Fatal("Type.String broken")
	}
	if w, ok := Int64.FixedWidth(); !ok || w != 8 {
		t.Fatalf("Int64 width = %d, %v", w, ok)
	}
	if w, ok := Bool.FixedWidth(); !ok || w != 1 {
		t.Fatalf("Bool width = %d, %v", w, ok)
	}
	if _, ok := String.FixedWidth(); ok {
		t.Fatal("String should be variable width")
	}
}

func TestHConcat(t *testing.T) {
	ls := MustSchema(Column{Name: "id", Type: Int64}, Column{Name: "val", Type: Float64})
	rs := MustSchema(Column{Name: "tag", Type: String}, Column{Name: "ok", Type: Bool})
	l := NewBatch(ls, 3)
	r := NewBatch(rs, 3)
	for i := 0; i < 3; i++ {
		if err := l.AppendRow(int64(i), float64(i)*0.5); err != nil {
			t.Fatal(err)
		}
		if err := r.AppendRow(fmt.Sprintf("t%d", i), i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	s, err := ls.Concat(rs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := HConcat(s, l, r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 3 || out.Schema().Len() != 4 {
		t.Fatalf("out = %d rows x %d cols, want 3x4", out.Rows(), out.Schema().Len())
	}
	row, err := out.Row(1)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != int64(1) || row[1] != 0.5 || row[2] != "t1" || row[3] != false {
		t.Fatalf("row 1 = %v", row)
	}
	// A view input must zip without touching the parent's storage.
	lv, err := l.ViewRange(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := r.ViewRange(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	vo, err := HConcat(s, lv, rv)
	if err != nil {
		t.Fatal(err)
	}
	if vo.Rows() != 2 {
		t.Fatalf("view zip rows = %d, want 2", vo.Rows())
	}
	// Mismatched row counts are rejected.
	short := NewBatch(rs, 1)
	if err := short.AppendRow("x", true); err != nil {
		t.Fatal(err)
	}
	if _, err := HConcat(s, l, short); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("row mismatch: %v", err)
	}
	// A schema not matching l++r is rejected.
	if _, err := HConcat(ls, l, r); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("schema arity mismatch: %v", err)
	}
}

func TestForEachChunk(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: Int64}, Column{Name: "b", Type: String})
	b := NewBatch(s, 10)
	for i := 0; i < 10; i++ {
		if err := b.AppendRow(int64(i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	// Chunks of 3 over 10 rows: 3+3+3+1, concatenating back to the batch.
	var sizes []int
	concat := NewBatch(s, 10)
	if err := b.ForEachChunk(3, func(chunk *Batch) error {
		sizes = append(sizes, chunk.Rows())
		return concat.AppendBatch(chunk)
	}); err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 4 || sizes[0] != 3 || sizes[3] != 1 {
		t.Fatalf("chunk sizes = %v", sizes)
	}
	if !concat.Equal(b) {
		t.Fatal("chunk concatenation differs from source batch")
	}
	// size < 1 yields one whole-batch view; empty batches yield no calls.
	calls := 0
	if err := b.ForEachChunk(0, func(chunk *Batch) error {
		calls++
		if chunk.Rows() != 10 {
			t.Fatalf("whole-batch view rows = %d", chunk.Rows())
		}
		return nil
	}); err != nil || calls != 1 {
		t.Fatalf("size<1: calls=%d err=%v", calls, err)
	}
	if err := NewBatch(s, 0).ForEachChunk(4, func(*Batch) error {
		t.Fatal("empty batch produced a chunk")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Errors stop the iteration and propagate.
	boom := errors.New("stop")
	calls = 0
	if err := b.ForEachChunk(4, func(*Batch) error {
		calls++
		return boom
	}); !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("error propagation: calls=%d err=%v", calls, err)
	}
}
