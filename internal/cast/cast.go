// Package cast implements the universal data model of the Polystore++
// system — the "CAST" layer of BigDAWG terminology that every byte crossing
// an engine boundary travels through.
//
// The central type is Batch: a typed, columnar collection of rows. Engines
// produce and consume batches; the data migrator serializes them; hardware
// kernels stream them. The package also defines Schema/Column metadata and
// value-level helpers (comparison, hashing) shared by join, sort and group-by
// implementations across the repository.
package cast

import (
	"errors"
	"fmt"
	"strings"
)

// Type identifies the physical type of a column. Enums start at 1 so the
// zero value is invalid and misuse is caught early.
type Type int

// Supported column types.
const (
	Int64 Type = iota + 1
	Float64
	String
	Bool
	// Timestamp is an int64 count of nanoseconds since the Unix epoch. It is
	// kept distinct from Int64 so cross-model conversions (e.g. into the
	// timeseries store) know which column is the time axis.
	Timestamp
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Bool:
		return "bool"
	case Timestamp:
		return "timestamp"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Valid reports whether t is one of the declared column types.
func (t Type) Valid() bool { return t >= Int64 && t <= Timestamp }

// FixedWidth returns the serialized width in bytes for fixed-width types and
// (0, false) for variable-width types (String).
func (t Type) FixedWidth() (int, bool) {
	switch t {
	case Int64, Float64, Timestamp:
		return 8, true
	case Bool:
		return 1, true
	default:
		return 0, false
	}
}

// Column describes a single column: a name unique within its schema and a
// physical type.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. Schemas are treated as immutable:
// all mutating helpers return fresh copies.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// Sentinel errors returned by this package.
var (
	ErrColumnNotFound = errors.New("cast: column not found")
	ErrTypeMismatch   = errors.New("cast: type mismatch")
	ErrSchemaMismatch = errors.New("cast: schema mismatch")
	ErrRowOutOfRange  = errors.New("cast: row index out of range")
	ErrDuplicateName  = errors.New("cast: duplicate column name")
	ErrBadValue       = errors.New("cast: value not representable in column type")
)

// NewSchema builds a schema from the given columns. It returns an error when
// a column name repeats or a type is invalid.
func NewSchema(cols ...Column) (Schema, error) {
	byName := make(map[string]int, len(cols))
	for i, c := range cols {
		if !c.Type.Valid() {
			return Schema{}, fmt.Errorf("cast: column %q: invalid type %d", c.Name, int(c.Type))
		}
		if _, dup := byName[c.Name]; dup {
			return Schema{}, fmt.Errorf("%w: %q", ErrDuplicateName, c.Name)
		}
		byName[c.Name] = i
	}
	own := make([]Column, len(cols))
	copy(own, cols)
	return Schema{cols: own, byName: byName}, nil
}

// MustSchema is NewSchema for statically-known schemas in tests and
// generators; it panics on error and must not be used with dynamic input.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// Index returns the position of the named column.
func (s Schema) Index(name string) (int, error) {
	if i, ok := s.byName[name]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("%w: %q", ErrColumnNotFound, name)
}

// Has reports whether the schema contains the named column.
func (s Schema) Has(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// Equal reports whether two schemas have identical column lists.
func (s Schema) Equal(o Schema) bool {
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// Project returns a schema containing only the named columns, in the given
// order.
func (s Schema) Project(names ...string) (Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i, err := s.Index(n)
		if err != nil {
			return Schema{}, err
		}
		cols = append(cols, s.cols[i])
	}
	return NewSchema(cols...)
}

// Rename returns a schema with column old renamed to new.
func (s Schema) Rename(old, new string) (Schema, error) {
	i, err := s.Index(old)
	if err != nil {
		return Schema{}, err
	}
	cols := s.Columns()
	cols[i].Name = new
	return NewSchema(cols...)
}

// Concat returns the concatenation of two schemas. Duplicate names are
// rejected; callers joining self-similar schemas should Rename first.
func (s Schema) Concat(o Schema) (Schema, error) {
	cols := make([]Column, 0, len(s.cols)+len(o.cols))
	cols = append(cols, s.cols...)
	cols = append(cols, o.cols...)
	return NewSchema(cols...)
}

// String renders the schema as "(name type, ...)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// column is the typed storage of one column. Exactly one backing slice is in
// use, selected by the column type.
type column struct {
	ints  []int64 // Int64 and Timestamp
	flts  []float64
	strs  []string
	bools []bool
}

func (c *column) grow(t Type, n int) {
	switch t {
	case Int64, Timestamp:
		if cap(c.ints) < n {
			nw := make([]int64, len(c.ints), n)
			copy(nw, c.ints)
			c.ints = nw
		}
	case Float64:
		if cap(c.flts) < n {
			nw := make([]float64, len(c.flts), n)
			copy(nw, c.flts)
			c.flts = nw
		}
	case String:
		if cap(c.strs) < n {
			nw := make([]string, len(c.strs), n)
			copy(nw, c.strs)
			c.strs = nw
		}
	case Bool:
		if cap(c.bools) < n {
			nw := make([]bool, len(c.bools), n)
			copy(nw, c.bools)
			c.bools = nw
		}
	}
}

// Batch is a columnar collection of rows sharing one schema. The zero value
// is unusable; construct batches with NewBatch.
type Batch struct {
	schema Schema
	cols   []column
	rows   int
}

// NewBatch returns an empty batch with the given schema and capacity hint.
func NewBatch(s Schema, capacity int) *Batch {
	b := &Batch{schema: s, cols: make([]column, s.Len())}
	if capacity > 0 {
		for i := range b.cols {
			b.cols[i].grow(s.Col(i).Type, capacity)
		}
	}
	return b
}

// Schema returns the batch schema.
func (b *Batch) Schema() Schema { return b.schema }

// Rows returns the number of rows currently stored.
func (b *Batch) Rows() int { return b.rows }

// AppendRow appends one row given as one value per column. Accepted dynamic
// types per column type: Int64/Timestamp ← int64 or int; Float64 ← float64;
// String ← string; Bool ← bool.
func (b *Batch) AppendRow(vals ...any) error {
	if len(vals) != b.schema.Len() {
		return fmt.Errorf("%w: got %d values for %d columns", ErrSchemaMismatch, len(vals), b.schema.Len())
	}
	for i, v := range vals {
		if err := b.appendVal(i, v); err != nil {
			// Roll back the columns already appended for this row.
			for j := 0; j < i; j++ {
				b.truncCol(j, b.rows)
			}
			return err
		}
	}
	b.rows++
	return nil
}

func (b *Batch) appendVal(i int, v any) error {
	c := &b.cols[i]
	t := b.schema.Col(i).Type
	switch t {
	case Int64, Timestamp:
		switch x := v.(type) {
		case int64:
			c.ints = append(c.ints, x)
		case int:
			c.ints = append(c.ints, int64(x))
		default:
			return fmt.Errorf("%w: column %q wants %s, got %T", ErrBadValue, b.schema.Col(i).Name, t, v)
		}
	case Float64:
		switch x := v.(type) {
		case float64:
			c.flts = append(c.flts, x)
		case int:
			c.flts = append(c.flts, float64(x))
		case int64:
			c.flts = append(c.flts, float64(x))
		default:
			return fmt.Errorf("%w: column %q wants %s, got %T", ErrBadValue, b.schema.Col(i).Name, t, v)
		}
	case String:
		x, ok := v.(string)
		if !ok {
			return fmt.Errorf("%w: column %q wants %s, got %T", ErrBadValue, b.schema.Col(i).Name, t, v)
		}
		c.strs = append(c.strs, x)
	case Bool:
		x, ok := v.(bool)
		if !ok {
			return fmt.Errorf("%w: column %q wants %s, got %T", ErrBadValue, b.schema.Col(i).Name, t, v)
		}
		c.bools = append(c.bools, x)
	default:
		return fmt.Errorf("cast: corrupt schema type %d", int(t))
	}
	return nil
}

func (b *Batch) truncCol(i, n int) {
	c := &b.cols[i]
	switch b.schema.Col(i).Type {
	case Int64, Timestamp:
		c.ints = c.ints[:n]
	case Float64:
		c.flts = c.flts[:n]
	case String:
		c.strs = c.strs[:n]
	case Bool:
		c.bools = c.bools[:n]
	}
}

// Ints returns the backing int64 slice for an Int64/Timestamp column. The
// slice aliases batch storage; callers must not grow it.
func (b *Batch) Ints(col int) ([]int64, error) {
	t := b.schema.Col(col).Type
	if t != Int64 && t != Timestamp {
		return nil, fmt.Errorf("%w: column %d is %s, not int64/timestamp", ErrTypeMismatch, col, t)
	}
	return b.cols[col].ints, nil
}

// Floats returns the backing float64 slice for a Float64 column.
func (b *Batch) Floats(col int) ([]float64, error) {
	if t := b.schema.Col(col).Type; t != Float64 {
		return nil, fmt.Errorf("%w: column %d is %s, not float64", ErrTypeMismatch, col, t)
	}
	return b.cols[col].flts, nil
}

// Strings returns the backing string slice for a String column.
func (b *Batch) Strings(col int) ([]string, error) {
	if t := b.schema.Col(col).Type; t != String {
		return nil, fmt.Errorf("%w: column %d is %s, not string", ErrTypeMismatch, col, t)
	}
	return b.cols[col].strs, nil
}

// Bools returns the backing bool slice for a Bool column.
func (b *Batch) Bools(col int) ([]bool, error) {
	if t := b.schema.Col(col).Type; t != Bool {
		return nil, fmt.Errorf("%w: column %d is %s, not bool", ErrTypeMismatch, col, t)
	}
	return b.cols[col].bools, nil
}

// Value returns the value at (row, col) boxed as any.
func (b *Batch) Value(row, col int) (any, error) {
	if row < 0 || row >= b.rows {
		return nil, fmt.Errorf("%w: %d of %d", ErrRowOutOfRange, row, b.rows)
	}
	c := &b.cols[col]
	switch b.schema.Col(col).Type {
	case Int64, Timestamp:
		return c.ints[row], nil
	case Float64:
		return c.flts[row], nil
	case String:
		return c.strs[row], nil
	case Bool:
		return c.bools[row], nil
	}
	return nil, fmt.Errorf("cast: corrupt schema type")
}

// Row materializes row i as a []any, one element per column.
func (b *Batch) Row(i int) ([]any, error) {
	if i < 0 || i >= b.rows {
		return nil, fmt.Errorf("%w: %d of %d", ErrRowOutOfRange, i, b.rows)
	}
	out := make([]any, b.schema.Len())
	for c := range out {
		v, err := b.Value(i, c)
		if err != nil {
			return nil, err
		}
		out[c] = v
	}
	return out, nil
}

// AppendBatch appends all rows of src (which must have an equal schema).
func (b *Batch) AppendBatch(src *Batch) error {
	if !b.schema.Equal(src.schema) {
		return fmt.Errorf("%w: %s vs %s", ErrSchemaMismatch, b.schema, src.schema)
	}
	for i := range b.cols {
		switch b.schema.Col(i).Type {
		case Int64, Timestamp:
			b.cols[i].ints = append(b.cols[i].ints, src.cols[i].ints...)
		case Float64:
			b.cols[i].flts = append(b.cols[i].flts, src.cols[i].flts...)
		case String:
			b.cols[i].strs = append(b.cols[i].strs, src.cols[i].strs...)
		case Bool:
			b.cols[i].bools = append(b.cols[i].bools, src.cols[i].bools...)
		}
	}
	b.rows += src.rows
	return nil
}

// View returns a read-only batch sharing b's column storage, frozen at b's
// current length. Safe to read while b keeps growing append-only: appends
// either write beyond the view's length (invisible to it) or reallocate the
// backing array (the view keeps the old one); existing elements are never
// written in place. The view must not be mutated, and callers appending to
// b concurrently must synchronize the View call itself against appends (the
// relational table takes its lock).
func (b *Batch) View() *Batch {
	cols := make([]column, len(b.cols))
	copy(cols, b.cols)
	return &Batch{schema: b.schema, cols: cols, rows: b.rows}
}

// ViewRange returns a read-only view of rows [lo, hi) sharing b's column
// storage — no data is copied. It carries the same aliasing contract as
// View (safe against append-only growth of b, must not be mutated); the
// backing slices are capacity-clamped so even an erroneous append to the
// view cannot clobber b's rows. Partition-parallel scans use it to hand each
// worker a zero-copy row range.
func (b *Batch) ViewRange(lo, hi int) (*Batch, error) {
	if lo < 0 || hi > b.rows || lo > hi {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrRowOutOfRange, lo, hi, b.rows)
	}
	out := &Batch{schema: b.schema, cols: make([]column, len(b.cols)), rows: hi - lo}
	for i := range b.cols {
		switch b.schema.Col(i).Type {
		case Int64, Timestamp:
			out.cols[i].ints = b.cols[i].ints[lo:hi:hi]
		case Float64:
			out.cols[i].flts = b.cols[i].flts[lo:hi:hi]
		case String:
			out.cols[i].strs = b.cols[i].strs[lo:hi:hi]
		case Bool:
			out.cols[i].bools = b.cols[i].bools[lo:hi:hi]
		}
	}
	return out, nil
}

// ForEachChunk calls fn with consecutive zero-copy row-range views of at
// most size rows each, in row order, stopping at the first error. The views
// carry ViewRange's aliasing contract (read-only, safe against append-only
// growth). Streaming result paths use it to turn a materialized batch into
// an ordered sequence of wire-sized chunks whose concatenation is exactly
// the batch. An empty batch yields no calls; size < 1 yields one view of the
// whole batch.
func (b *Batch) ForEachChunk(size int, fn func(chunk *Batch) error) error {
	if b.rows == 0 {
		return nil
	}
	if size < 1 {
		size = b.rows
	}
	for lo := 0; lo < b.rows; lo += size {
		hi := lo + size
		if hi > b.rows {
			hi = b.rows
		}
		view, err := b.ViewRange(lo, hi)
		if err != nil {
			return err
		}
		if err := fn(view); err != nil {
			return err
		}
	}
	return nil
}

// Slice returns a new batch holding rows [lo, hi). Data is copied so the
// result is independent of the receiver.
func (b *Batch) Slice(lo, hi int) (*Batch, error) {
	if lo < 0 || hi > b.rows || lo > hi {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrRowOutOfRange, lo, hi, b.rows)
	}
	out := NewBatch(b.schema, hi-lo)
	for i := range b.cols {
		switch b.schema.Col(i).Type {
		case Int64, Timestamp:
			out.cols[i].ints = append(out.cols[i].ints, b.cols[i].ints[lo:hi]...)
		case Float64:
			out.cols[i].flts = append(out.cols[i].flts, b.cols[i].flts[lo:hi]...)
		case String:
			out.cols[i].strs = append(out.cols[i].strs, b.cols[i].strs[lo:hi]...)
		case Bool:
			out.cols[i].bools = append(out.cols[i].bools, b.cols[i].bools[lo:hi]...)
		}
	}
	out.rows = hi - lo
	return out, nil
}

// Gather returns a new batch with the rows at the given indices, in order.
func (b *Batch) Gather(idx []int) (*Batch, error) {
	out := NewBatch(b.schema, len(idx))
	for _, r := range idx {
		if r < 0 || r >= b.rows {
			return nil, fmt.Errorf("%w: %d of %d", ErrRowOutOfRange, r, b.rows)
		}
	}
	for i := range b.cols {
		switch b.schema.Col(i).Type {
		case Int64, Timestamp:
			dst := make([]int64, len(idx))
			for j, r := range idx {
				dst[j] = b.cols[i].ints[r]
			}
			out.cols[i].ints = dst
		case Float64:
			dst := make([]float64, len(idx))
			for j, r := range idx {
				dst[j] = b.cols[i].flts[r]
			}
			out.cols[i].flts = dst
		case String:
			dst := make([]string, len(idx))
			for j, r := range idx {
				dst[j] = b.cols[i].strs[r]
			}
			out.cols[i].strs = dst
		case Bool:
			dst := make([]bool, len(idx))
			for j, r := range idx {
				dst[j] = b.cols[i].bools[r]
			}
			out.cols[i].bools = dst
		}
	}
	out.rows = len(idx)
	return out, nil
}

// Project returns a new batch containing only the named columns. Column data
// is copied.
func (b *Batch) Project(names ...string) (*Batch, error) {
	s, err := b.schema.Project(names...)
	if err != nil {
		return nil, err
	}
	out := NewBatch(s, b.rows)
	for j, n := range names {
		i, _ := b.schema.Index(n)
		switch b.schema.Col(i).Type {
		case Int64, Timestamp:
			out.cols[j].ints = append(out.cols[j].ints, b.cols[i].ints...)
		case Float64:
			out.cols[j].flts = append(out.cols[j].flts, b.cols[i].flts...)
		case String:
			out.cols[j].strs = append(out.cols[j].strs, b.cols[i].strs...)
		case Bool:
			out.cols[j].bools = append(out.cols[j].bools, b.cols[i].bools...)
		}
	}
	out.rows = b.rows
	return out, nil
}

// HConcat zips two equal-length batches column-wise under the combined
// schema s (the columns of l followed by the columns of r). Column data is
// copied column-at-a-time, so joins can materialize wide outputs without
// boxing every value the way row-wise appends do.
func HConcat(s Schema, l, r *Batch) (*Batch, error) {
	if l.rows != r.rows {
		return nil, fmt.Errorf("%w: HConcat of %d vs %d rows", ErrSchemaMismatch, l.rows, r.rows)
	}
	nl := l.schema.Len()
	if s.Len() != nl+r.schema.Len() {
		return nil, fmt.Errorf("%w: HConcat schema has %d columns for %d+%d inputs",
			ErrSchemaMismatch, s.Len(), nl, r.schema.Len())
	}
	out := NewBatch(s, l.rows)
	for i := 0; i < s.Len(); i++ {
		src, sc := l, i
		if i >= nl {
			src, sc = r, i-nl
		}
		if got, want := src.schema.Col(sc).Type, s.Col(i).Type; got != want {
			return nil, fmt.Errorf("%w: HConcat column %q is %s, schema wants %s",
				ErrSchemaMismatch, s.Col(i).Name, got, want)
		}
		c := &src.cols[sc]
		switch s.Col(i).Type {
		case Int64, Timestamp:
			out.cols[i].ints = append(out.cols[i].ints, c.ints[:src.rows]...)
		case Float64:
			out.cols[i].flts = append(out.cols[i].flts, c.flts[:src.rows]...)
		case String:
			out.cols[i].strs = append(out.cols[i].strs, c.strs[:src.rows]...)
		case Bool:
			out.cols[i].bools = append(out.cols[i].bools, c.bools[:src.rows]...)
		}
	}
	out.rows = l.rows
	return out, nil
}

// Clone returns a deep copy of the batch.
func (b *Batch) Clone() *Batch {
	out, err := b.Slice(0, b.rows)
	if err != nil {
		// Slice(0, rows) cannot fail on a consistent batch.
		panic(err)
	}
	return out
}

// ByteSize returns the approximate in-memory payload size of the batch in
// bytes, used by cost models and migration accounting.
func (b *Batch) ByteSize() int64 {
	var total int64
	for i := range b.cols {
		c := &b.cols[i]
		switch b.schema.Col(i).Type {
		case Int64, Timestamp:
			total += int64(len(c.ints)) * 8
		case Float64:
			total += int64(len(c.flts)) * 8
		case Bool:
			total += int64(len(c.bools))
		case String:
			for _, s := range c.strs {
				total += int64(len(s)) + 8
			}
		}
	}
	return total
}

// Equal reports whether two batches hold identical schemas and data.
func (b *Batch) Equal(o *Batch) bool {
	if b.rows != o.rows || !b.schema.Equal(o.schema) {
		return false
	}
	for i := range b.cols {
		switch b.schema.Col(i).Type {
		case Int64, Timestamp:
			for j := 0; j < b.rows; j++ {
				if b.cols[i].ints[j] != o.cols[i].ints[j] {
					return false
				}
			}
		case Float64:
			for j := 0; j < b.rows; j++ {
				if b.cols[i].flts[j] != o.cols[i].flts[j] {
					return false
				}
			}
		case String:
			for j := 0; j < b.rows; j++ {
				if b.cols[i].strs[j] != o.cols[i].strs[j] {
					return false
				}
			}
		case Bool:
			for j := 0; j < b.rows; j++ {
				if b.cols[i].bools[j] != o.cols[i].bools[j] {
					return false
				}
			}
		}
	}
	return true
}
