package backend

import (
	"context"

	"polystorepp/internal/kvstore"
	"polystorepp/internal/relational"
	"polystorepp/internal/timeseries"
)

// Memory is the reference backend: the native in-memory engines exactly as
// they are, full pushdown, nothing persisted. Every durable backend must be
// read-equivalent to it after recovery — the property the WAL replay
// equivalence suite pins.
type Memory struct{}

// NewMemory returns the reference in-memory backend.
func NewMemory() *Memory { return &Memory{} }

// Kind implements Backend.
func (m *Memory) Kind() string { return "memory" }

// Capabilities implements Backend: full pushdown, not durable.
func (m *Memory) Capabilities() Capabilities { return Full() }

// AttachKV implements Backend (stores need no binding; they are the storage).
func (m *Memory) AttachKV(name string, s *kvstore.Store) {}

// AttachTimeseries implements Backend.
func (m *Memory) AttachTimeseries(name string, s *timeseries.Store) {}

// AttachRelational implements Backend.
func (m *Memory) AttachRelational(name string, s *relational.Store) {}

// Recover implements Backend: there is never persisted state.
func (m *Memory) Recover() (RecoverStats, error) { return RecoverStats{}, nil }

// Start implements Backend: nothing to journal into.
func (m *Memory) Start() error { return nil }

// Barrier implements Backend: in-memory applies are immediately "durable"
// for the lifetime the backend promises (the process).
func (m *Memory) Barrier(ctx context.Context) error { return ctx.Err() }

// Checkpoint implements Backend: nothing to compact.
func (m *Memory) Checkpoint() error { return nil }

// Stats implements Backend.
func (m *Memory) Stats() Stats {
	return Stats{Kind: "memory", Capabilities: Full().String()}
}

// Close implements Backend.
func (m *Memory) Close() error { return nil }
