package backend

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"polystorepp/internal/cast"
)

// Binary primitives shared by the WAL record format and the snapshot layout:
// fixed-width little-endian integers, IEEE-754 floats, and u32
// length-prefixed strings/byte slices. Values from relational rows are
// self-describing (one type tag per value) so a record decodes without the
// table schema in hand.

// ErrCorrupt marks an undecodable frame or payload.
var ErrCorrupt = errors.New("backend: corrupt record")

// maxFrame bounds a single framed payload (a defense against decoding a
// garbage length as gigabytes).
const maxFrame = 64 << 20

// Value type tags for self-describing relational row values.
const (
	tagInt64 byte = iota + 1
	tagFloat64
	tagString
	tagBool
)

type encoder struct{ buf []byte }

func (e *encoder) u8(v byte) { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}
func (e *encoder) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// val encodes one relational row value with its type tag.
func (e *encoder) val(v any) error {
	switch x := v.(type) {
	case int64:
		e.u8(tagInt64)
		e.i64(x)
	case int:
		e.u8(tagInt64)
		e.i64(int64(x))
	case float64:
		e.u8(tagFloat64)
		e.f64(x)
	case string:
		e.u8(tagString)
		e.str(x)
	case bool:
		e.u8(tagBool)
		if x {
			e.u8(1)
		} else {
			e.u8(0)
		}
	default:
		return fmt.Errorf("backend: unencodable value type %T", v)
	}
	return nil
}

// schema encodes a relational schema (column names and types).
func (e *encoder) schema(s cast.Schema) {
	e.u32(uint32(s.Len()))
	for i := 0; i < s.Len(); i++ {
		c := s.Col(i)
		e.str(c.Name)
		e.u8(byte(c.Type))
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return ""
	}
	v := string(d.buf[d.off : d.off+n])
	d.off += n
	return v
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, d.buf[d.off:d.off+n])
	d.off += n
	return v
}

func (d *decoder) val() any {
	switch d.u8() {
	case tagInt64:
		return d.i64()
	case tagFloat64:
		return d.f64()
	case tagString:
		return d.str()
	case tagBool:
		return d.u8() != 0
	default:
		d.fail()
		return nil
	}
}

func (d *decoder) schema() cast.Schema {
	n := int(d.u32())
	if d.err != nil || n < 0 || n > 1<<16 {
		d.fail()
		return cast.Schema{}
	}
	cols := make([]cast.Column, 0, n)
	for i := 0; i < n; i++ {
		name := d.str()
		typ := cast.Type(d.u8())
		if d.err != nil {
			return cast.Schema{}
		}
		cols = append(cols, cast.Column{Name: name, Type: typ})
	}
	s, err := cast.NewSchema(cols...)
	if err != nil {
		d.fail()
		return cast.Schema{}
	}
	return s
}
