package backend

import "strings"

// Capabilities declares what a storage backend can execute natively, the
// contract the middleware negotiates pushdown against (the BigDAWG
// island/shim question: does this engine run the predicate, or do we?).
// The in-memory reference backend and the WAL-durable backend both host the
// native engines and advertise full pushdown; an adapter over an external
// engine would advertise only what that engine's query surface supports,
// and the residual executes in the middleware's own operators.
type Capabilities struct {
	// PredicatePushdown: the backend evaluates filter predicates natively.
	PredicatePushdown bool
	// LimitPushdown: the backend bounds result cardinality natively.
	LimitPushdown bool
	// PrefixScan: the backend enumerates keys by prefix natively (the KV
	// engine's range surface); without it the middleware scans everything
	// and filters.
	PrefixScan bool
	// Durable: acknowledged writes survive a process crash.
	Durable bool
}

// Full returns the full pushdown capability set (not durable; durability is
// a property of the concrete backend, not of the query surface).
func Full() Capabilities {
	return Capabilities{PredicatePushdown: true, LimitPushdown: true, PrefixScan: true}
}

// Negotiate splits a requested pushdown set against what a backend offers:
// granted executes inside the backend, residual must execute in the
// middleware's operators. Requested capabilities the backend lacks are never
// silently dropped — they always come back in residual.
func Negotiate(requested, offered Capabilities) (granted, residual Capabilities) {
	granted = Capabilities{
		PredicatePushdown: requested.PredicatePushdown && offered.PredicatePushdown,
		LimitPushdown:     requested.LimitPushdown && offered.LimitPushdown,
		PrefixScan:        requested.PrefixScan && offered.PrefixScan,
	}
	residual = Capabilities{
		PredicatePushdown: requested.PredicatePushdown && !offered.PredicatePushdown,
		LimitPushdown:     requested.LimitPushdown && !offered.LimitPushdown,
		PrefixScan:        requested.PrefixScan && !offered.PrefixScan,
	}
	return granted, residual
}

// String renders the set compactly for /stats ("predicate,limit,prefix-scan,durable").
func (c Capabilities) String() string {
	var parts []string
	if c.PredicatePushdown {
		parts = append(parts, "predicate")
	}
	if c.LimitPushdown {
		parts = append(parts, "limit")
	}
	if c.PrefixScan {
		parts = append(parts, "prefix-scan")
	}
	if c.Durable {
		parts = append(parts, "durable")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}
