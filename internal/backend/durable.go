package backend

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"polystorepp/internal/kvstore"
	"polystorepp/internal/relational"
	"polystorepp/internal/timeseries"
)

// WAL record types.
const (
	recKVPut byte = iota + 1
	recKVDelete
	recTSAppend
	recRelInsert
	recRelCreate
	recRelIndex
)

// Index kinds inside recRelIndex records.
const (
	idxBTree byte = 1
	idxHash  byte = 2
)

// defaultSnapshotBytes is the active-segment size that triggers snapshot
// compaction when Config.SnapshotBytes is 0.
const defaultSnapshotBytes = 8 << 20

// Durable is the WAL + snapshot backend: the native in-memory engines with
// every applied mutation journaled into a segmented write-ahead log
// (fsync-batched group commit), replayed on boot, and compacted into a
// snapshot once the active segment passes the size threshold. Read
// semantics are exactly the memory backend's — durability changes what
// survives, never what a query returns.
type Durable struct {
	cfg       Config
	snapBytes int64

	mu      sync.Mutex
	kv      map[string]*kvstore.Store
	ts      map[string]*timeseries.Store
	rel     map[string]*relational.Store
	w       *wal
	nextSeg uint64
	started bool
	closed  bool
	rec     RecoverStats

	// snapMu serializes checkpoints (forced and background). The background
	// path acquires it with TryLock under d.mu, together with the closed
	// check and wg.Add, so a snapshot goroutine can never be added after
	// Close's wg.Wait has started.
	snapMu         sync.Mutex
	snapshotWrites atomic.Uint64
	snapshotLast   atomic.Int64
	wg             sync.WaitGroup
}

// OpenDurable constructs the "wal" backend over cfg.Dir (created if absent).
// No files are written until Start.
func OpenDurable(cfg Config) (*Durable, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("backend: wal backend requires a data directory")
	}
	if _, err := ParseSyncPolicy(string(cfg.Sync)); err != nil {
		return nil, err
	}
	if cfg.Sync == "" {
		cfg.Sync = SyncGroup
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	snapBytes := cfg.SnapshotBytes
	if snapBytes == 0 {
		snapBytes = defaultSnapshotBytes
	}
	return &Durable{
		cfg:       cfg,
		snapBytes: snapBytes,
		kv:        make(map[string]*kvstore.Store),
		ts:        make(map[string]*timeseries.Store),
		rel:       make(map[string]*relational.Store),
		nextSeg:   1,
	}, nil
}

// HasState reports whether dir holds recoverable state (a snapshot or any
// non-empty log segment) — the boot-time "recover or seed?" question.
func HasState(dir string) bool {
	if fi, err := os.Stat(filepath.Join(dir, snapFile)); err == nil && fi.Size() > 0 {
		return true
	}
	segs, err := listSegments(dir)
	if err != nil {
		return false
	}
	for _, idx := range segs {
		if fi, err := os.Stat(filepath.Join(dir, segName(idx))); err == nil && fi.Size() > 0 {
			return true
		}
	}
	return false
}

// Kind implements Backend.
func (d *Durable) Kind() string { return "wal" }

// Capabilities implements Backend: the native engines' full pushdown, plus
// durability.
func (d *Durable) Capabilities() Capabilities {
	c := Full()
	c.Durable = true
	return c
}

// AttachKV implements Backend.
func (d *Durable) AttachKV(name string, s *kvstore.Store) {
	d.mu.Lock()
	d.kv[name] = s
	d.mu.Unlock()
}

// AttachTimeseries implements Backend.
func (d *Durable) AttachTimeseries(name string, s *timeseries.Store) {
	d.mu.Lock()
	d.ts[name] = s
	d.mu.Unlock()
}

// AttachRelational implements Backend.
func (d *Durable) AttachRelational(name string, s *relational.Store) {
	d.mu.Lock()
	d.rel[name] = s
	d.mu.Unlock()
}

// Recover implements Backend: snapshot restore, then WAL replay with
// version-watermark guards (records a snapshot already covers are skipped),
// then one epoch bump per store so post-restart version vectors are
// strictly past every acknowledged pre-crash value. Attached stores must be
// empty. Call before Start.
func (d *Durable) Recover() (RecoverStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started {
		return RecoverStats{}, fmt.Errorf("backend: Recover after Start")
	}
	var rec RecoverStats

	snap, snapSize, ok, err := readSnapshot(d.cfg.Dir)
	if err != nil {
		return rec, fmt.Errorf("backend: load snapshot: %w", err)
	}
	if ok {
		rec.Recovered, rec.SnapshotLoaded = true, true
		d.snapshotLast.Store(snapSize)
		if err := d.restoreSnapshotLocked(snap); err != nil {
			return rec, err
		}
	}

	segs, err := listSegments(d.cfg.Dir)
	if err != nil {
		return rec, err
	}
	if n := len(segs); n > 0 {
		d.nextSeg = segs[n-1] + 1
	}
	bytes, truncated, err := replaySegments(d.cfg.Dir, segs, func(payload []byte) error {
		applied, aerr := d.applyRecordLocked(payload)
		if aerr != nil {
			// A record that cannot apply (unroutable store, divergent
			// schema) is counted, logged and skipped: recovery restores the
			// longest consistent prefix rather than refusing to boot.
			d.cfg.logf("backend: replay skip: %v", aerr)
			rec.Skipped++
			return nil
		}
		if applied {
			rec.Records++
		} else {
			rec.Skipped++
		}
		return nil
	})
	if err != nil {
		return rec, fmt.Errorf("backend: replay: %w", err)
	}
	rec.Bytes = bytes
	rec.Truncated = truncated
	// Skipped records are still evidence of previously acknowledged state:
	// a dir replayed under a configuration whose stores don't route (every
	// record skipped, no snapshot) must NOT report Recovered=false, or the
	// caller would seed and Checkpoint over it — compacting away the sealed
	// segments and permanently discarding that data.
	if rec.Records > 0 || rec.Skipped > 0 {
		rec.Recovered = true
	}

	if rec.Recovered {
		for _, s := range d.kv {
			s.BumpVersion()
		}
		for _, s := range d.ts {
			s.BumpVersion()
		}
		for _, s := range d.rel {
			s.BumpVersion()
		}
	}
	d.rec = rec
	d.cfg.logf("backend: recovered snapshot=%t records=%d skipped=%d bytes=%d truncated=%t",
		rec.SnapshotLoaded, rec.Records, rec.Skipped, rec.Bytes, rec.Truncated)
	return rec, nil
}

// restoreSnapshotLocked loads decoded snapshot state into attached stores.
func (d *Durable) restoreSnapshotLocked(snap snapshotData) error {
	for name, dump := range snap.kv {
		s, ok := d.kv[name]
		if !ok {
			d.cfg.logf("backend: snapshot kv store %q not attached; dropped", name)
			continue
		}
		if err := s.RestoreState(dump.data, dump.shardVersions); err != nil {
			return err
		}
	}
	for name, dump := range snap.ts {
		s, ok := d.ts[name]
		if !ok {
			d.cfg.logf("backend: snapshot timeseries store %q not attached; dropped", name)
			continue
		}
		if err := s.RestoreState(dump.series, dump.version); err != nil {
			return err
		}
	}
	for name, dump := range snap.rel {
		s, ok := d.rel[name]
		if !ok {
			d.cfg.logf("backend: snapshot relational store %q not attached; dropped", name)
			continue
		}
		if err := s.RestoreState(dump.tables, dump.storeVersion); err != nil {
			return err
		}
	}
	return nil
}

// applyRecordLocked decodes and applies one WAL record; applied is false
// when the record is already covered by restored state.
func (d *Durable) applyRecordLocked(payload []byte) (applied bool, err error) {
	dec := &decoder{buf: payload}
	typ := dec.u8()
	store := dec.str()
	switch typ {
	case recKVPut:
		key := dec.str()
		var ent kvstore.Entry
		ent.Version = dec.i64()
		ent.WrittenAt = fromUnixNano(dec.i64())
		ent.ExpiresAt = fromUnixNano(dec.i64())
		ent.Value = dec.bytes()
		shardVer := dec.u64()
		if dec.err != nil {
			return false, dec.err
		}
		s, ok := d.kv[store]
		if !ok {
			return false, fmt.Errorf("kv store %q not attached", store)
		}
		return s.ReplayPut(key, ent, shardVer), nil
	case recKVDelete:
		key := dec.str()
		shardVer := dec.u64()
		if dec.err != nil {
			return false, dec.err
		}
		s, ok := d.kv[store]
		if !ok {
			return false, fmt.Errorf("kv store %q not attached", store)
		}
		return s.ReplayDelete(key, shardVer), nil
	case recTSAppend:
		series := dec.str()
		ts := dec.i64()
		v := dec.f64()
		ver := dec.u64()
		if dec.err != nil {
			return false, dec.err
		}
		s, ok := d.ts[store]
		if !ok {
			return false, fmt.Errorf("timeseries store %q not attached", store)
		}
		return s.ReplayAppend(series, ts, v, ver)
	case recRelInsert:
		table := dec.str()
		ver := dec.u64()
		nrows := int(dec.u32())
		ncols := int(dec.u32())
		if dec.err != nil || nrows < 0 || ncols < 0 || nrows > 1<<24 || ncols > 1<<16 {
			return false, ErrCorrupt
		}
		rows := make([][]any, 0, nrows)
		for r := 0; r < nrows; r++ {
			vals := make([]any, ncols)
			for c := 0; c < ncols; c++ {
				vals[c] = dec.val()
			}
			rows = append(rows, vals)
		}
		if dec.err != nil {
			return false, dec.err
		}
		s, ok := d.rel[store]
		if !ok {
			return false, fmt.Errorf("relational store %q not attached", store)
		}
		return s.ReplayInsert(table, rows, ver)
	case recRelCreate:
		table := dec.str()
		schema := dec.schema()
		storeVer := dec.u64()
		if dec.err != nil {
			return false, dec.err
		}
		s, ok := d.rel[store]
		if !ok {
			return false, fmt.Errorf("relational store %q not attached", store)
		}
		return s.ReplayCreateTable(table, schema, storeVer)
	case recRelIndex:
		table := dec.str()
		col := dec.str()
		kind := dec.u8()
		ver := dec.u64()
		if dec.err != nil {
			return false, dec.err
		}
		s, ok := d.rel[store]
		if !ok {
			return false, fmt.Errorf("relational store %q not attached", store)
		}
		op := relational.JournalBTreeIndex
		if kind == idxHash {
			op = relational.JournalHashIndex
		}
		return s.ReplayIndex(table, col, op, ver)
	}
	return false, fmt.Errorf("%w: record type %d", ErrCorrupt, typ)
}

// Start implements Backend: opens the active log segment and installs the
// journal taps on every attached store. Mutations from here on are
// captured; call after Recover (and after seeding, so seed data lands in
// the first Checkpoint snapshot rather than the log).
func (d *Durable) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.started {
		return nil
	}
	w, err := openWAL(d.cfg.Dir, d.cfg.Sync, d.nextSeg)
	if err != nil {
		return err
	}
	d.w = w
	d.started = true
	for name, s := range d.kv {
		name := name
		s.SetJournal(func(r kvstore.JournalRecord) { w.append(encodeKVRecord(name, r)) })
	}
	for name, s := range d.ts {
		name := name
		s.SetJournal(func(series string, ts int64, v float64, ver uint64) {
			w.append(encodeTSRecord(name, series, ts, v, ver))
		})
	}
	for name, s := range d.rel {
		name := name
		s.SetJournal(func(r relational.JournalRecord) {
			payload, err := encodeRelRecord(name, r)
			if err != nil {
				d.cfg.logf("backend: %v", err)
				w.errors.Add(1)
				return
			}
			w.append(payload)
		})
	}
	return nil
}

// Barrier implements Backend: block until everything journaled so far is
// durable under the sync policy, then consider triggering a background
// snapshot. The write path calls this before acknowledging a client write,
// so under SyncGroup "acknowledged" means "fsynced".
func (d *Durable) Barrier(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d.mu.Lock()
	w := d.w
	d.mu.Unlock()
	if w == nil {
		return nil
	}
	if err := w.sync(w.tail()); err != nil {
		return err
	}
	d.maybeSnapshot()
	return nil
}

// maybeSnapshot starts a background checkpoint when the active segment has
// outgrown the threshold and none is already running.
func (d *Durable) maybeSnapshot() {
	if d.snapBytes <= 0 {
		return
	}
	d.mu.Lock()
	run := !d.closed && d.w != nil && d.w.segmentBytes() >= d.snapBytes && d.snapMu.TryLock()
	if run {
		d.wg.Add(1)
	}
	d.mu.Unlock()
	if !run {
		return
	}
	go func() {
		defer d.wg.Done()
		defer d.snapMu.Unlock()
		if err := d.checkpoint(); err != nil {
			d.cfg.logf("backend: background snapshot: %v", err)
		}
	}()
}

// Checkpoint implements Backend: force a snapshot now (waiting out any
// background one first — snapMu serializes checkpoints).
func (d *Durable) Checkpoint() error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	return d.checkpoint()
}

// checkpoint seals the active segment, snapshots every attached store, and
// removes the sealed segments the snapshot now covers. Correctness: a
// journal record is appended only after its mutation applied, so the store
// state read here is a superset of every sealed record; records still
// arriving into the new active segment carry version watermarks past the
// snapshot's and replay skips any overlap.
func (d *Durable) checkpoint() error {
	d.mu.Lock()
	if d.closed || d.w == nil {
		d.mu.Unlock()
		return ErrClosed
	}
	w := d.w
	kv, ts, rel := d.kv, d.ts, d.rel
	d.mu.Unlock()

	sealed, err := w.rotate()
	if err != nil {
		return fmt.Errorf("backend: rotate: %w", err)
	}

	snap := snapshotData{
		kv:  make(map[string]kvDump, len(kv)),
		ts:  make(map[string]tsDump, len(ts)),
		rel: make(map[string]relDump, len(rel)),
	}
	for name, s := range kv {
		data, vers := s.SnapshotState()
		snap.kv[name] = kvDump{data: data, shardVersions: vers}
	}
	for name, s := range ts {
		series, ver := s.SnapshotState()
		snap.ts[name] = tsDump{series: series, version: ver}
	}
	for name, s := range rel {
		tables, ver := s.SnapshotState()
		snap.rel[name] = relDump{tables: tables, storeVersion: ver}
	}
	payload, err := encodeSnapshot(snap)
	if err != nil {
		return fmt.Errorf("backend: encode snapshot: %w", err)
	}
	size, err := writeSnapshot(d.cfg.Dir, payload)
	if err != nil {
		return fmt.Errorf("backend: write snapshot: %w", err)
	}
	d.snapshotWrites.Add(1)
	d.snapshotLast.Store(size)

	segs, err := listSegments(d.cfg.Dir)
	if err != nil {
		return err
	}
	var old []uint64
	for _, idx := range segs {
		if idx <= sealed {
			old = append(old, idx)
		}
	}
	if err := removeSegments(d.cfg.Dir, old); err != nil {
		return err
	}
	d.cfg.logf("backend: snapshot %d bytes, %d sealed segment(s) compacted", size, len(old))
	return nil
}

// Stats implements Backend.
func (d *Durable) Stats() Stats {
	d.mu.Lock()
	w, rec := d.w, d.rec
	d.mu.Unlock()
	st := Stats{
		Kind:            "wal",
		Durable:         true,
		SyncPolicy:      string(d.cfg.Sync),
		Capabilities:    d.Capabilities().String(),
		ReplayRecords:   rec.Records,
		ReplaySkipped:   rec.Skipped,
		ReplayBytes:     rec.Bytes,
		SnapshotWrites:  d.snapshotWrites.Load(),
		SnapshotTrigger: d.snapBytes,
	}
	if rec.Truncated {
		st.ReplayTruncated = 1
	}
	if rec.SnapshotLoaded {
		st.ReplaySnapshot = 1
	}
	st.SnapshotLastBytes = d.snapshotLast.Load()
	if w != nil {
		st.WALAppends = w.appends.Load()
		st.WALBytes = w.bytes.Load()
		st.WALFsyncs = w.fsyncs.Load()
		st.WALErrors = w.errors.Load()
		st.WALSegmentBytes = w.segmentBytes()
	}
	return st
}

// Close implements Backend: detach the journal taps, finish any background
// snapshot, make the log durable and release files.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	w := d.w
	kv, ts, rel := d.kv, d.ts, d.rel
	d.mu.Unlock()
	for _, s := range kv {
		s.SetJournal(nil)
	}
	for _, s := range ts {
		s.SetJournal(nil)
	}
	for _, s := range rel {
		s.SetJournal(nil)
	}
	d.wg.Wait()
	if w == nil {
		return nil
	}
	return w.close()
}

// encodeKVRecord renders a kvstore journal record as a WAL payload.
func encodeKVRecord(store string, r kvstore.JournalRecord) []byte {
	e := &encoder{}
	if r.Op == kvstore.JournalDelete {
		e.u8(recKVDelete)
		e.str(store)
		e.str(r.Key)
		e.u64(r.ShardVersion)
		return e.buf
	}
	e.u8(recKVPut)
	e.str(store)
	e.str(r.Key)
	e.i64(r.Entry.Version)
	e.i64(unixNano(r.Entry.WrittenAt))
	e.i64(unixNano(r.Entry.ExpiresAt))
	e.bytes(r.Entry.Value)
	e.u64(r.ShardVersion)
	return e.buf
}

// encodeTSRecord renders a timeseries append as a WAL payload.
func encodeTSRecord(store, series string, ts int64, v float64, ver uint64) []byte {
	e := &encoder{}
	e.u8(recTSAppend)
	e.str(store)
	e.str(series)
	e.i64(ts)
	e.f64(v)
	e.u64(ver)
	return e.buf
}

// encodeRelRecord renders a relational journal record as a WAL payload.
func encodeRelRecord(store string, r relational.JournalRecord) ([]byte, error) {
	e := &encoder{}
	switch r.Op {
	case relational.JournalInsert:
		e.u8(recRelInsert)
		e.str(store)
		e.str(r.Table)
		e.u64(r.TableVersion)
		e.u32(uint32(len(r.Rows)))
		ncols := 0
		if len(r.Rows) > 0 {
			ncols = len(r.Rows[0])
		}
		e.u32(uint32(ncols))
		for _, row := range r.Rows {
			for _, v := range row {
				if err := e.val(v); err != nil {
					return nil, fmt.Errorf("backend: journal %s.%s: %w", store, r.Table, err)
				}
			}
		}
	case relational.JournalCreateTable:
		e.u8(recRelCreate)
		e.str(store)
		e.str(r.Table)
		e.schema(r.Schema)
		e.u64(r.StoreVersion)
	case relational.JournalBTreeIndex, relational.JournalHashIndex:
		e.u8(recRelIndex)
		e.str(store)
		e.str(r.Table)
		e.str(r.Col)
		if r.Op == relational.JournalHashIndex {
			e.u8(idxHash)
		} else {
			e.u8(idxBTree)
		}
		e.u64(r.TableVersion)
	default:
		return nil, fmt.Errorf("backend: journal op %d", r.Op)
	}
	return e.buf, nil
}
