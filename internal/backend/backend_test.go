package backend

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"polystorepp/internal/cast"
	"polystorepp/internal/kvstore"
	"polystorepp/internal/relational"
	"polystorepp/internal/timeseries"
)

// stores is one full deployment of the three durable engines.
type stores struct {
	kv  *kvstore.Store
	ts  *timeseries.Store
	rel *relational.Store
}

func newStores(t *testing.T) stores {
	t.Helper()
	rel := relational.NewStore("db")
	tbl, err := rel.CreateTable("events", cast.MustSchema(
		cast.Column{Name: "id", Type: cast.Int64},
		cast.Column{Name: "kind", Type: cast.String},
		cast.Column{Name: "score", Type: cast.Float64},
		cast.Column{Name: "ok", Type: cast.Bool},
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateBTreeIndex("id"); err != nil {
		t.Fatal(err)
	}
	return stores{kv: kvstore.New("kv"), ts: timeseries.New("ts"), rel: rel}
}

func attach(b Backend, s stores) {
	b.AttachKV("kv", s.kv)
	b.AttachTimeseries("ts", s.ts)
	b.AttachRelational("db", s.rel)
}

// writeMix applies n writes across all three engines, identical for any
// stores value — the workload equivalence tests replay on both sides.
func writeMix(t *testing.T, s stores, lo, hi int) {
	t.Helper()
	tbl, err := s.rel.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	for i := lo; i < hi; i++ {
		s.kv.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i)))
		if i%7 == 3 {
			s.kv.Delete(fmt.Sprintf("k%03d", i-2))
		}
		if err := s.ts.Append("cpu", int64(i+1)*1000, float64(i)*0.5); err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert(int64(i), fmt.Sprintf("kind-%d", i%3), float64(i)*1.25, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
}

// versions captures the three engines' version counters.
func versions(s stores) [3]uint64 {
	return [3]uint64{s.kv.Version(), s.ts.Version(), s.rel.Version()}
}

// assertEquiv asserts got serves byte-identical reads to want across all
// three engines.
func assertEquiv(t *testing.T, want, got stores) {
	t.Helper()
	wk, gk := want.kv.ScanPrefix(""), got.kv.ScanPrefix("")
	if len(wk) != len(gk) {
		t.Fatalf("kv keys: want %d got %d", len(wk), len(gk))
	}
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("kv key[%d]: want %q got %q", i, wk[i], gk[i])
		}
		wv, werr := want.kv.Get(wk[i])
		gv, gerr := got.kv.Get(gk[i])
		if (werr == nil) != (gerr == nil) || string(wv) != string(gv) {
			t.Fatalf("kv %q: want %q/%v got %q/%v", wk[i], wv, werr, gv, gerr)
		}
	}
	wp, werr := want.ts.Range("cpu", 0, 1<<62)
	gp, gerr := got.ts.Range("cpu", 0, 1<<62)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("ts range: want err %v got %v", werr, gerr)
	}
	if len(wp) != len(gp) {
		t.Fatalf("ts points: want %d got %d", len(wp), len(gp))
	}
	for i := range wp {
		if wp[i] != gp[i] {
			t.Fatalf("ts point[%d]: want %+v got %+v", i, wp[i], gp[i])
		}
	}
	wt, err := want.rel.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	gt, err := got.rel.Table("events")
	if err != nil {
		t.Fatalf("recovered table: %v", err)
	}
	if !wt.Snapshot().Equal(gt.Snapshot()) {
		t.Fatalf("relational heaps differ: want %d rows got %d", wt.Rows(), gt.Rows())
	}
	if wt.HasBTree("id") != gt.HasBTree("id") {
		t.Fatalf("btree index lost across recovery")
	}
}

// openStarted opens a wal backend over dir, attaches s, recovers and starts.
func openStarted(t *testing.T, dir string, s stores) (Backend, RecoverStats) {
	t.Helper()
	b, err := Open("wal", Config{Dir: dir, Sync: SyncGroup, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	attach(b, s)
	rec, err := b.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	return b, rec
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	live := newStores(t)
	b, rec := openStarted(t, dir, live)
	if rec.Recovered {
		t.Fatalf("fresh dir reported recovered state: %+v", rec)
	}
	writeMix(t, live, 0, 40)
	if err := b.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	preVV := versions(live)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference: the same writes applied to a never-persisted deployment.
	ref := newStores(t)
	writeMix(t, ref, 0, 40)

	recovered := newStores(t)
	b2, rec2 := openStarted(t, dir, recovered)
	defer b2.Close()
	if !rec2.Recovered || rec2.Records == 0 {
		t.Fatalf("expected replayed records, got %+v", rec2)
	}
	assertEquiv(t, ref, recovered)
	postVV := versions(recovered)
	for i := range preVV {
		if postVV[i] <= preVV[i] {
			t.Fatalf("engine %d version vector did not strictly advance: pre %d post %d", i, preVV[i], postVV[i])
		}
	}
}

func TestDurableSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	live := newStores(t)
	b, _ := openStarted(t, dir, live)
	writeMix(t, live, 0, 25)
	if err := b.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.SnapshotWrites != 1 || st.SnapshotLastBytes <= 0 {
		t.Fatalf("expected one snapshot, got %+v", st)
	}
	// Post-checkpoint writes land in the new active segment only.
	writeMix(t, live, 25, 40)
	if err := b.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("expected sealed segments compacted away, have %v", segs)
	}

	ref := newStores(t)
	writeMix(t, ref, 0, 40)
	recovered := newStores(t)
	b2, rec := openStarted(t, dir, recovered)
	defer b2.Close()
	if !rec.SnapshotLoaded {
		t.Fatalf("expected snapshot load, got %+v", rec)
	}
	assertEquiv(t, ref, recovered)
}

func TestDurableAutoSnapshotTrigger(t *testing.T) {
	dir := t.TempDir()
	live := newStores(t)
	b, err := Open("wal", Config{Dir: dir, Sync: SyncGroup, SnapshotBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	attach(b, live)
	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		writeMix(t, live, i*5, i*5+5)
		if err := b.Barrier(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().SnapshotWrites; got == 0 {
		t.Fatalf("size trigger never snapshotted (segment bytes %d)", b.Stats().WALSegmentBytes)
	}
	// And the compacted state still recovers whole.
	ref := newStores(t)
	writeMix(t, ref, 0, 150)
	recovered := newStores(t)
	b2, _ := openStarted(t, dir, recovered)
	defer b2.Close()
	assertEquiv(t, ref, recovered)
}

func TestDurableTornTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	live := newStores(t)
	b, _ := openStarted(t, dir, live)
	writeMix(t, live, 0, 20)
	if err := b.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append garbage to the live segment.
	tearSegmentTail(t, dir)

	ref := newStores(t)
	writeMix(t, ref, 0, 20)
	recovered := newStores(t)
	b2, rec := openStarted(t, dir, recovered)
	defer b2.Close()
	if !rec.Truncated {
		t.Fatalf("expected torn-tail truncation, got %+v", rec)
	}
	assertEquiv(t, ref, recovered)
}

// tearSegmentTail appends a partial frame to the newest segment in dir,
// simulating a crash mid-write.
func tearSegmentTail(t *testing.T, dir string) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(segs[len(segs)-1])), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestDurableTornSegmentRepairedAcrossRestarts pins the double-crash case:
// after recovery #1 stops at a torn frame in segment N, new writes land in
// segment N+1 — recovery #2 must serve BOTH the pre-tear prefix and the
// post-recovery writes, which requires recovery #1 to have truncated the
// torn segment rather than leaving the torn frame as a permanent replay
// stop.
func TestDurableTornSegmentRepairedAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	live := newStores(t)
	b, _ := openStarted(t, dir, live)
	writeMix(t, live, 0, 10)
	if err := b.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	tearSegmentTail(t, dir)

	// Restart #1 replays the valid prefix and repairs the torn segment;
	// further acknowledged writes go to the next segment.
	mid := newStores(t)
	b2, rec := openStarted(t, dir, mid)
	if !rec.Truncated {
		t.Fatalf("expected torn-tail truncation, got %+v", rec)
	}
	writeMix(t, mid, 10, 20)
	if err := b2.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart #2 (a clean one) must see both generations.
	ref := newStores(t)
	writeMix(t, ref, 0, 20)
	recovered := newStores(t)
	b3, rec2 := openStarted(t, dir, recovered)
	defer b3.Close()
	if rec2.Truncated {
		t.Fatalf("torn segment not repaired on first recovery: %+v", rec2)
	}
	if rec2.Records == 0 {
		t.Fatalf("second recovery replayed nothing: %+v", rec2)
	}
	assertEquiv(t, ref, recovered)
}

// TestDurableSkippedRecordsStillRecovered pins Recovered=true when the log
// holds records that cannot be applied (unroutable stores after a
// reconfigured boot): the caller must not seed + Checkpoint over them.
func TestDurableSkippedRecordsStillRecovered(t *testing.T) {
	dir := t.TempDir()
	live := newStores(t)
	b, _ := openStarted(t, dir, live)
	writeMix(t, live, 0, 5)
	if err := b.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with no stores attached: every record is unroutable.
	b2, err := Open("wal", Config{Dir: dir, Sync: SyncGroup, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := b2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 || rec.Skipped == 0 {
		t.Fatalf("expected all records skipped, got %+v", rec)
	}
	if !rec.Recovered {
		t.Fatalf("skipped-only replay must still report recovered state: %+v", rec)
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}

	// The data is still on disk for a correctly configured boot.
	ref := newStores(t)
	writeMix(t, ref, 0, 5)
	recovered := newStores(t)
	b3, rec3 := openStarted(t, dir, recovered)
	defer b3.Close()
	if !rec3.Recovered || rec3.Records == 0 {
		t.Fatalf("expected full recovery after reattach, got %+v", rec3)
	}
	assertEquiv(t, ref, recovered)
}

// TestWALAppendAfterCloseFailsSync pins the sticky-error path: a record
// arriving after close() released the file handle must fail the next sync
// rather than be silently dropped and acknowledged.
func TestWALAppendAfterCloseFailsSync(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, SyncGroup, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq := w.append([]byte("before"))
	if err := w.sync(seq); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	seq = w.append([]byte("after"))
	if err := w.sync(seq); err == nil {
		t.Fatal("append after close must surface a sticky error on sync")
	}
	if w.errors.Load() == 0 {
		t.Fatal("dropped append not counted as an error")
	}
}

func TestKVTTLSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	live := newStores(t)
	b, _ := openStarted(t, dir, live)
	live.kv.PutTTL("ephemeral", []byte("x"), time.Minute)
	live.kv.PutTTL("expired", []byte("y"), -time.Second)
	live.kv.Put("forever", []byte("z"))
	if err := b.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := newStores(t)
	b2, _ := openStarted(t, dir, recovered)
	defer b2.Close()
	if _, err := recovered.kv.Get("ephemeral"); err != nil {
		t.Fatalf("live TTL entry lost: %v", err)
	}
	if _, err := recovered.kv.Get("expired"); err == nil {
		t.Fatalf("negative-TTL entry came back alive")
	}
	if v, err := recovered.kv.Get("forever"); err != nil || string(v) != "z" {
		t.Fatalf("forever: %q %v", v, err)
	}
}

func TestRegistry(t *testing.T) {
	kinds := Kinds()
	want := map[string]bool{"memory": false, "wal": false}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("kind %q not registered (have %v)", k, kinds)
		}
	}
	if _, err := Open("bogus", Config{}); err == nil {
		t.Fatal("unknown kind must fail")
	}
	m, err := Open("memory", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != "memory" || m.Capabilities().Durable {
		t.Fatalf("memory backend: %s %+v", m.Kind(), m.Capabilities())
	}
	if _, err := Open("wal", Config{}); err == nil {
		t.Fatal("wal backend without Dir must fail")
	}
}

func TestNegotiate(t *testing.T) {
	req := Full()
	granted, residual := Negotiate(req, Full())
	if granted != Full() || residual != (Capabilities{}) {
		t.Fatalf("full vs full: granted %+v residual %+v", granted, residual)
	}
	limited := Capabilities{PredicatePushdown: true}
	granted, residual = Negotiate(req, limited)
	if !granted.PredicatePushdown || granted.LimitPushdown || granted.PrefixScan {
		t.Fatalf("granted %+v", granted)
	}
	if residual.PredicatePushdown || !residual.LimitPushdown || !residual.PrefixScan {
		t.Fatalf("residual %+v", residual)
	}
	if got := (Capabilities{}).String(); got != "none" {
		t.Fatalf("empty caps string %q", got)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncGroup, SyncInterval, SyncOff} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			dir := t.TempDir()
			live := newStores(t)
			b, err := Open("wal", Config{Dir: dir, Sync: pol, SnapshotBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			attach(b, live)
			if _, err := b.Recover(); err != nil {
				t.Fatal(err)
			}
			if err := b.Start(); err != nil {
				t.Fatal(err)
			}
			writeMix(t, live, 0, 10)
			if err := b.Barrier(context.Background()); err != nil {
				t.Fatal(err)
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			ref := newStores(t)
			writeMix(t, ref, 0, 10)
			recovered := newStores(t)
			b2, _ := openStarted(t, dir, recovered)
			defer b2.Close()
			assertEquiv(t, ref, recovered)
		})
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad sync policy must fail")
	}
}

func TestHasState(t *testing.T) {
	dir := t.TempDir()
	if HasState(dir) {
		t.Fatal("empty dir has state")
	}
	live := newStores(t)
	b, _ := openStarted(t, dir, live)
	writeMix(t, live, 0, 3)
	if err := b.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if !HasState(dir) {
		t.Fatal("dir with segments reports no state")
	}
}
