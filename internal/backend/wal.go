package backend

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when the WAL fsyncs relative to write acknowledgement.
type SyncPolicy string

// Sync policies.
const (
	// SyncGroup (default): a write is acknowledged only after an fsync
	// covering it. Concurrent writers share one fsync — the classic group
	// commit — so the cost amortizes with concurrency instead of paying one
	// fsync per write.
	SyncGroup SyncPolicy = "group"
	// SyncInterval: writes are acknowledged after the buffered file write;
	// an fsync is issued at most every asyncSyncEvery, piggybacked on the
	// write path. A crash can lose up to that window of acknowledged writes.
	SyncInterval SyncPolicy = "interval"
	// SyncOff: never fsync (the OS page cache decides). Fastest; an OS crash
	// can lose everything since the last page flush. Process crashes still
	// lose nothing — the page cache survives the process.
	SyncOff SyncPolicy = "off"
)

// ParseSyncPolicy validates a -wal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case "", SyncGroup:
		return SyncGroup, nil
	case SyncInterval:
		return SyncInterval, nil
	case SyncOff:
		return SyncOff, nil
	}
	return "", fmt.Errorf("backend: unknown sync policy %q (want group, interval, off)", s)
}

// asyncSyncEvery is the SyncInterval fsync cadence.
const asyncSyncEvery = 100 * time.Millisecond

const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

func segName(index uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, index, segSuffix)
}

// wal is a segmented write-ahead log of framed records. Appends write
// (OS-buffered) to the active segment under mu; durability is provided by
// sync(), a leader-elected batched fsync. Rotation (rotate) seals the active
// segment for snapshot compaction.
type wal struct {
	dir    string
	policy SyncPolicy

	// mu guards the active segment handle, sizes and sequence numbers.
	mu       sync.Mutex
	f        *os.File
	segIndex uint64
	size     int64  // bytes in the active segment
	seq      uint64 // last written record sequence
	werr     error  // sticky write failure; Barrier surfaces it

	// flushMu serializes fsync batches (the group-commit leader lock) and
	// rotation, so a segment handle is never closed under an in-flight Sync.
	flushMu  sync.Mutex
	synced   atomic.Uint64 // last sequence covered by an fsync
	lastSync time.Time     // SyncInterval cadence bookkeeping (flushMu)

	appends atomic.Uint64
	bytes   atomic.Uint64
	fsyncs  atomic.Uint64
	errors  atomic.Uint64
}

// listSegments returns the existing segment indexes in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// openWAL creates the active segment after the highest existing index.
// Recovery must have consumed the existing segments first.
func openWAL(dir string, policy SyncPolicy, nextIndex uint64) (*wal, error) {
	w := &wal{dir: dir, policy: policy, segIndex: nextIndex}
	f, err := os.OpenFile(filepath.Join(dir, segName(nextIndex)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w.f = f
	return w, nil
}

// frame wraps payload as [len u32][crc u32][payload].
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// append writes one framed record to the active segment and returns its
// sequence number (to wait on via sync). Write failures are sticky: the
// record may be lost, every later Barrier fails, and the serving layer stops
// acknowledging writes.
func (w *wal) append(payload []byte) uint64 {
	fr := frame(payload)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	seq := w.seq
	if w.werr == nil {
		if w.f == nil {
			// A record arriving after close() released the handle is lost;
			// sticky failure so a concurrent Barrier fails instead of
			// acknowledging a write that was never journaled.
			w.werr = fmt.Errorf("backend: wal append: %w", ErrClosed)
			w.errors.Add(1)
		} else if _, err := w.f.Write(fr); err != nil {
			w.werr = fmt.Errorf("backend: wal append: %w", err)
			w.errors.Add(1)
		} else {
			w.size += int64(len(fr))
			w.appends.Add(1)
			w.bytes.Add(uint64(len(fr)))
		}
	}
	return seq
}

// sync makes every record with sequence <= seq durable under the policy.
// Under SyncGroup the caller blocks until an fsync covers it, with
// concurrent callers sharing one fsync (whoever takes flushMu first syncs
// through the current tail and the rest find themselves already covered).
func (w *wal) sync(seq uint64) error {
	if w.policy != SyncGroup {
		// Acknowledge after the buffered write; issue a cadence fsync under
		// SyncInterval so the loss window stays bounded.
		if w.policy == SyncInterval {
			w.flushMu.Lock()
			if time.Since(w.lastSync) >= asyncSyncEvery {
				w.fsyncLocked()
			}
			w.flushMu.Unlock()
		}
		return w.writeErr()
	}
	if w.synced.Load() >= seq {
		return w.writeErr()
	}
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	if w.synced.Load() >= seq { // a previous leader's batch covered us
		return w.writeErr()
	}
	w.fsyncLocked()
	return w.writeErr()
}

// fsyncLocked fsyncs the active segment, covering everything written so
// far. Caller holds flushMu. Rotation seals (and fsyncs) old segments under
// flushMu too, so records are never left un-synced in a previous segment.
func (w *wal) fsyncLocked() {
	w.mu.Lock()
	f, top := w.f, w.seq
	w.mu.Unlock()
	if f == nil {
		return
	}
	if err := f.Sync(); err != nil {
		w.mu.Lock()
		if w.werr == nil {
			w.werr = fmt.Errorf("backend: wal fsync: %w", err)
		}
		w.mu.Unlock()
		w.errors.Add(1)
		return
	}
	w.fsyncs.Add(1)
	w.lastSync = time.Now()
	// Monotonic max: another leader cannot be racing (flushMu held).
	if w.synced.Load() < top {
		w.synced.Store(top)
	}
}

func (w *wal) writeErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.werr
}

// rotate seals the active segment (fsynced, closed) and opens the next one,
// returning the sealed segment's index. Every record in sealed segments is
// durable afterwards, which is what lets fsyncLocked touch only the active
// file.
func (w *wal) rotate() (sealed uint64, err error) {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	old, oldIndex := w.f, w.segIndex
	next := w.segIndex + 1
	nf, ferr := os.OpenFile(filepath.Join(w.dir, segName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if ferr != nil {
		w.mu.Unlock()
		return 0, ferr
	}
	w.f = nf
	w.segIndex = next
	w.size = 0
	top := w.seq
	w.mu.Unlock()

	if old != nil {
		if serr := old.Sync(); serr == nil {
			w.fsyncs.Add(1)
			if w.synced.Load() < top {
				w.synced.Store(top)
			}
		} else {
			// The sealed segment holds records that may never reach disk, and
			// no later fsync (of the new, empty active file) covers them.
			// Sticky failure: Barrier must refuse to acknowledge them.
			w.errors.Add(1)
			w.mu.Lock()
			if w.werr == nil {
				w.werr = fmt.Errorf("backend: wal seal fsync: %w", serr)
			}
			w.mu.Unlock()
		}
		old.Close()
	}
	return oldIndex, nil
}

// tail returns the last written record sequence.
func (w *wal) tail() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// segmentBytes returns the active segment's size.
func (w *wal) segmentBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// close fsyncs (unless SyncOff) and closes the active segment.
func (w *wal) close() error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	f := w.f
	w.f = nil
	w.mu.Unlock()
	if f == nil {
		return nil
	}
	var err error
	if w.policy != SyncOff {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// replayFn receives one decoded record payload during replay.
type replayFn func(payload []byte) error

// replaySegments reads the framed records of the given segments in order. A
// torn or corrupt frame (the crash signature: an un-fsynced tail) ends that
// segment's replay at its valid prefix; the segment is truncated to that
// prefix on disk and replay continues with the next segment. The repair
// matters across restarts: after a crash the torn segment stops being the
// last one — new writes land in fresh segments — and without it every later
// recovery would stop at the same torn frame and silently drop the
// acknowledged records in those later segments. It returns payload bytes
// consumed and whether any segment was cut short.
func replaySegments(dir string, segs []uint64, fn replayFn) (bytes uint64, truncated bool, err error) {
	for _, idx := range segs {
		path := filepath.Join(dir, segName(idx))
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return bytes, truncated, rerr
		}
		off := 0
		torn := false
		for off < len(data) {
			if off+8 > len(data) {
				torn = true
				break
			}
			n := int(binary.LittleEndian.Uint32(data[off:]))
			crc := binary.LittleEndian.Uint32(data[off+4:])
			if n < 0 || n > maxFrame || off+8+n > len(data) {
				torn = true
				break
			}
			payload := data[off+8 : off+8+n]
			if crc32.ChecksumIEEE(payload) != crc {
				torn = true
				break
			}
			if ferr := fn(payload); ferr != nil {
				return bytes, truncated, ferr
			}
			bytes += uint64(n)
			off += 8 + n
		}
		if torn {
			truncated = true
			if terr := os.Truncate(path, int64(off)); terr != nil {
				// Fail loudly: booting over an unrepaired torn segment would
				// re-lose everything journaled after it on the next restart.
				return bytes, truncated, fmt.Errorf("backend: repair torn segment %s: %w", segName(idx), terr)
			}
		}
	}
	return bytes, truncated, nil
}

// removeSegments deletes the given sealed segments (post-snapshot
// compaction).
func removeSegments(dir string, segs []uint64) error {
	var first error
	for _, idx := range segs {
		if err := os.Remove(filepath.Join(dir, segName(idx))); err != nil && !errors.Is(err, io.EOF) && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}
