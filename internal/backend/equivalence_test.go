package backend

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestWALReplayEquivalence is the restart-correctness pin: ingest across all
// three durable engines, hard-stop mid-batch (no Close, no final fsync —
// the file handle is simply abandoned, as a SIGKILL leaves it), reopen the
// directory, and assert the recovered deployment serves exactly what a
// never-crashed deployment serves, with version vectors strictly past every
// value the pre-crash deployment ever presented.
func TestWALReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	live := newStores(t)
	b, _ := openStarted(t, dir, live)

	// Acknowledged batch: barriered, so group commit has fsynced it.
	writeMix(t, live, 0, 30)
	if err := b.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Mid-batch tail: applied and journaled (OS-buffered) but never
	// barriered — the writes in flight when the process dies. In-process
	// the page cache preserves them, so replay sees the full sequence; what
	// the test pins is that recovery handles an unsealed, un-fsynced tail.
	writeMix(t, live, 30, 45)
	preVV := versions(live)
	// Hard stop: no Close. b's handle is abandoned like a killed process's.
	_ = b

	// Reference deployment: the same writes, never crashed.
	ref := newStores(t)
	writeMix(t, ref, 0, 45)

	recovered := newStores(t)
	b2, rec := openStarted(t, dir, recovered)
	defer b2.Close()
	if !rec.Recovered || rec.Records == 0 {
		t.Fatalf("expected replay, got %+v", rec)
	}
	assertEquiv(t, ref, recovered)

	// Version vectors must land strictly past every pre-crash value: a
	// post-restart cache key can never alias one from the killed process.
	postVV := versions(recovered)
	for i, pre := range preVV {
		if postVV[i] <= pre {
			t.Fatalf("engine %d version did not strictly advance across crash: pre %d post %d", i, pre, postVV[i])
		}
	}
}

// TestWALReplayEquivalenceConcurrentWriters runs the same pin under
// concurrent multi-engine write load (the -race payoff): writers on all
// three engines race their journal taps and the group-commit leader, then
// the recovered state must equal a sequential reference re-application of
// exactly the operations that were applied.
func TestWALReplayEquivalenceConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	live := newStores(t)
	b, _ := openStarted(t, dir, live)

	// Per-writer disjoint workloads: own key prefix, own series, unique row
	// ids — the interleaving cannot change the final state, only the order
	// journal records land in the log.
	const writers, perWriter = 8, 20
	apply := func(s stores, w int) error {
		tbl, err := s.rel.Table("events")
		if err != nil {
			return err
		}
		for i := 0; i < perWriter; i++ {
			s.kv.Put(fmt.Sprintf("w%d-k%03d", w, i), []byte(fmt.Sprintf("v%d-%d", w, i)))
			if err := s.ts.Append(fmt.Sprintf("cpu%d", w), int64(i+1)*1000, float64(w*1000+i)); err != nil {
				return err
			}
			if err := tbl.Insert(int64(w*perWriter+i), fmt.Sprintf("kind-%d", w), float64(i), i%2 == 0); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := apply(live, w); err != nil {
				errs <- err
				return
			}
			errs <- b.Barrier(context.Background())
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Hard stop.
	_ = b

	ref := newStores(t)
	for w := 0; w < writers; w++ {
		if err := apply(ref, w); err != nil {
			t.Fatal(err)
		}
	}

	recovered := newStores(t)
	b2, rec := openStarted(t, dir, recovered)
	defer b2.Close()
	if !rec.Recovered {
		t.Fatalf("expected replay, got %+v", rec)
	}
	// kv and ts state is order-independent and must match the sequential
	// reference exactly.
	wk, gk := ref.kv.ScanPrefix(""), recovered.kv.ScanPrefix("")
	if len(wk) != len(gk) || len(gk) != writers*perWriter {
		t.Fatalf("kv keys: want %d got %d", len(wk), len(gk))
	}
	for _, k := range wk {
		wv, _ := ref.kv.Get(k)
		gv, err := recovered.kv.Get(k)
		if err != nil || string(wv) != string(gv) {
			t.Fatalf("kv %q: want %q got %q (%v)", k, wv, gv, err)
		}
	}
	for w := 0; w < writers; w++ {
		wp, werr := ref.ts.Range(fmt.Sprintf("cpu%d", w), 0, 1<<62)
		gp, gerr := recovered.ts.Range(fmt.Sprintf("cpu%d", w), 0, 1<<62)
		if werr != nil || gerr != nil || len(wp) != len(gp) {
			t.Fatalf("ts cpu%d: want %d (%v) got %d (%v)", w, len(wp), werr, len(gp), gerr)
		}
		for i := range wp {
			if wp[i] != gp[i] {
				t.Fatalf("ts cpu%d point[%d]: want %+v got %+v", w, i, wp[i], gp[i])
			}
		}
	}
	// The relational heap's row order depends on writer interleaving, so
	// compare against the live (pre-crash) table: replay must reproduce the
	// exact sequence the journal captured.
	lt, err := live.rel.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	gt, err := recovered.rel.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	if !lt.Snapshot().Equal(gt.Snapshot()) {
		t.Fatalf("relational heap diverged from pre-crash state: %d vs %d rows", lt.Rows(), gt.Rows())
	}
}
