package backend

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"polystorepp/internal/cast"
	"polystorepp/internal/kvstore"
	"polystorepp/internal/relational"
	"polystorepp/internal/timeseries"
)

// Snapshot layout. One file, written atomically (temp + fsync + rename):
//
//	magic "PPSNAP1\n" | payload len u64 | payload crc u32 | payload
//
// The payload opens with the version-vector header: every attached store's
// persisted version watermarks (per-shard counters for kv, the store counter
// for timeseries, store + per-table counters for relational). Recovery pins
// the restored counters to these watermarks — the seam that keeps
// post-restart version vectors strictly monotonic past the acknowledged
// pre-crash state. Data sections follow in the same store order.
const snapMagic = "PPSNAP1\n"

const (
	snapFile = "snapshot.db"
	snapTemp = "snapshot.tmp"
)

// Engine kinds in the snapshot header.
const (
	engKV byte = iota + 1
	engTS
	engRel
)

// kvDump is one kv store's snapshot state.
type kvDump struct {
	data          map[string][]kvstore.Entry
	shardVersions []uint64
}

// tsDump is one timeseries store's snapshot state.
type tsDump struct {
	series  map[string][]timeseries.Point
	version uint64
}

// relDump is one relational store's snapshot state.
type relDump struct {
	tables       []relational.TableDump
	storeVersion uint64
}

// snapshotData is the decoded whole-deployment snapshot.
type snapshotData struct {
	kv  map[string]kvDump
	ts  map[string]tsDump
	rel map[string]relDump
}

// unixNano encodes a time with the zero value as 0 (time.Time{}.UnixNano()
// is a large negative sentinel that must not round-trip as a real instant).
func unixNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

func fromUnixNano(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// encodeSnapshot renders the deployment state as a snapshot payload.
func encodeSnapshot(s snapshotData) ([]byte, error) {
	e := &encoder{}
	kvNames, tsNames, relNames := sortedKeys(s.kv), sortedKeys(s.ts), sortedKeys(s.rel)
	e.u32(uint32(len(kvNames) + len(tsNames) + len(relNames)))

	// Version-vector header.
	for _, n := range kvNames {
		d := s.kv[n]
		e.u8(engKV)
		e.str(n)
		e.u32(uint32(len(d.shardVersions)))
		for _, v := range d.shardVersions {
			e.u64(v)
		}
	}
	for _, n := range tsNames {
		e.u8(engTS)
		e.str(n)
		e.u64(s.ts[n].version)
	}
	for _, n := range relNames {
		d := s.rel[n]
		e.u8(engRel)
		e.str(n)
		e.u64(d.storeVersion)
		e.u32(uint32(len(d.tables)))
		for _, t := range d.tables {
			e.str(t.Name)
			e.u64(t.Version)
		}
	}

	// Data sections, same order.
	for _, n := range kvNames {
		d := s.kv[n]
		e.u32(uint32(len(d.data)))
		for _, key := range sortedKeys(d.data) {
			vs := d.data[key]
			e.str(key)
			e.u32(uint32(len(vs)))
			for _, ent := range vs {
				e.i64(ent.Version)
				e.i64(unixNano(ent.WrittenAt))
				e.i64(unixNano(ent.ExpiresAt))
				e.bytes(ent.Value)
			}
		}
	}
	for _, n := range tsNames {
		d := s.ts[n]
		e.u32(uint32(len(d.series)))
		for _, sn := range sortedKeys(d.series) {
			pts := d.series[sn]
			e.str(sn)
			e.u32(uint32(len(pts)))
			for _, p := range pts {
				e.i64(p.TS)
				e.f64(p.Value)
			}
		}
	}
	for _, n := range relNames {
		d := s.rel[n]
		e.u32(uint32(len(d.tables)))
		for _, t := range d.tables {
			e.str(t.Name)
			e.schema(t.Schema)
			e.u32(uint32(len(t.BTreeCols)))
			for _, c := range t.BTreeCols {
				e.str(c)
			}
			e.u32(uint32(len(t.HashCols)))
			for _, c := range t.HashCols {
				e.str(c)
			}
			rows := t.Rows.Rows()
			cols := t.Schema.Len()
			e.u32(uint32(rows))
			e.u32(uint32(cols))
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					v, err := t.Rows.Value(r, c)
					if err != nil {
						return nil, err
					}
					if err := e.val(v); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return e.buf, nil
}

// decodeSnapshot parses a snapshot payload.
func decodeSnapshot(buf []byte) (snapshotData, error) {
	out := snapshotData{
		kv:  make(map[string]kvDump),
		ts:  make(map[string]tsDump),
		rel: make(map[string]relDump),
	}
	d := &decoder{buf: buf}
	n := int(d.u32())
	if d.err != nil || n < 0 || n > 1<<20 {
		return out, ErrCorrupt
	}
	type hdr struct {
		kind byte
		name string
	}
	order := make([]hdr, 0, n)
	relTableVersions := make(map[string]map[string]uint64)
	for i := 0; i < n; i++ {
		kind := d.u8()
		name := d.str()
		order = append(order, hdr{kind, name})
		switch kind {
		case engKV:
			ns := int(d.u32())
			if d.err != nil || ns < 0 || ns > 1<<10 {
				return out, ErrCorrupt
			}
			vs := make([]uint64, ns)
			for j := range vs {
				vs[j] = d.u64()
			}
			out.kv[name] = kvDump{data: make(map[string][]kvstore.Entry), shardVersions: vs}
		case engTS:
			out.ts[name] = tsDump{series: make(map[string][]timeseries.Point), version: d.u64()}
		case engRel:
			sv := d.u64()
			nt := int(d.u32())
			if d.err != nil || nt < 0 || nt > 1<<20 {
				return out, ErrCorrupt
			}
			tv := make(map[string]uint64, nt)
			for j := 0; j < nt; j++ {
				tn := d.str()
				tv[tn] = d.u64()
			}
			out.rel[name] = relDump{storeVersion: sv}
			relTableVersions[name] = tv
		default:
			return out, ErrCorrupt
		}
		if d.err != nil {
			return out, d.err
		}
	}
	for _, h := range order {
		switch h.kind {
		case engKV:
			dump := out.kv[h.name]
			nk := int(d.u32())
			for i := 0; i < nk && d.err == nil; i++ {
				key := d.str()
				nv := int(d.u32())
				if d.err != nil || nv < 0 || nv > 1<<24 {
					return out, ErrCorrupt
				}
				vs := make([]kvstore.Entry, 0, nv)
				for j := 0; j < nv; j++ {
					var ent kvstore.Entry
					ent.Version = d.i64()
					ent.WrittenAt = fromUnixNano(d.i64())
					ent.ExpiresAt = fromUnixNano(d.i64())
					ent.Value = d.bytes()
					vs = append(vs, ent)
				}
				dump.data[key] = vs
			}
			out.kv[h.name] = dump
		case engTS:
			dump := out.ts[h.name]
			ns := int(d.u32())
			for i := 0; i < ns && d.err == nil; i++ {
				name := d.str()
				np := int(d.u32())
				if d.err != nil || np < 0 || np > 1<<28 {
					return out, ErrCorrupt
				}
				pts := make([]timeseries.Point, 0, np)
				for j := 0; j < np; j++ {
					ts := d.i64()
					v := d.f64()
					pts = append(pts, timeseries.Point{TS: ts, Value: v})
				}
				dump.series[name] = pts
			}
			out.ts[h.name] = dump
		case engRel:
			dump := out.rel[h.name]
			nt := int(d.u32())
			for i := 0; i < nt && d.err == nil; i++ {
				tname := d.str()
				schema := d.schema()
				nb := int(d.u32())
				if d.err != nil || nb < 0 || nb > 1<<10 {
					return out, ErrCorrupt
				}
				var btrees, hashes []string
				for j := 0; j < nb; j++ {
					btrees = append(btrees, d.str())
				}
				nh := int(d.u32())
				if d.err != nil || nh < 0 || nh > 1<<10 {
					return out, ErrCorrupt
				}
				for j := 0; j < nh; j++ {
					hashes = append(hashes, d.str())
				}
				rows := int(d.u32())
				cols := int(d.u32())
				if d.err != nil || rows < 0 || cols < 0 || cols != schema.Len() {
					return out, ErrCorrupt
				}
				batch := cast.NewBatch(schema, rows)
				vals := make([]any, cols)
				for r := 0; r < rows; r++ {
					for c := 0; c < cols; c++ {
						vals[c] = d.val()
					}
					if d.err != nil {
						return out, d.err
					}
					if err := batch.AppendRow(vals...); err != nil {
						return out, fmt.Errorf("backend: snapshot table %q row %d: %w", tname, r, err)
					}
				}
				dump.tables = append(dump.tables, relational.TableDump{
					Name: tname, Schema: schema, Rows: batch,
					BTreeCols: btrees, HashCols: hashes,
					Version: relTableVersions[h.name][tname],
				})
			}
			out.rel[h.name] = dump
		}
		if d.err != nil {
			return out, d.err
		}
	}
	return out, d.err
}

// writeSnapshot persists the payload atomically into dir.
func writeSnapshot(dir string, payload []byte) (int64, error) {
	hdr := make([]byte, len(snapMagic)+12)
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint64(hdr[len(snapMagic):], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[len(snapMagic)+8:], crc32.ChecksumIEEE(payload))

	tmp := filepath.Join(dir, snapTemp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(hdr); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapFile)); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return int64(len(hdr) + len(payload)), nil
}

// readSnapshot loads and verifies the snapshot file; ok is false when none
// exists.
func readSnapshot(dir string) (data snapshotData, size int64, ok bool, err error) {
	raw, rerr := os.ReadFile(filepath.Join(dir, snapFile))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return snapshotData{}, 0, false, nil
		}
		return snapshotData{}, 0, false, rerr
	}
	if len(raw) < len(snapMagic)+12 || string(raw[:len(snapMagic)]) != snapMagic {
		return snapshotData{}, 0, false, fmt.Errorf("%w: snapshot header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint64(raw[len(snapMagic):])
	crc := binary.LittleEndian.Uint32(raw[len(snapMagic)+8:])
	payload := raw[len(snapMagic)+12:]
	if uint64(len(payload)) != n || crc32.ChecksumIEEE(payload) != crc {
		return snapshotData{}, 0, false, fmt.Errorf("%w: snapshot payload", ErrCorrupt)
	}
	data, derr := decodeSnapshot(payload)
	if derr != nil {
		return snapshotData{}, 0, false, derr
	}
	return data, int64(len(raw)), true, nil
}
