// Package backend is the storage-backend abstraction under the polystore's
// native engines: who owns the bytes, what survives a crash, and what the
// engine can execute natively (capability negotiation for pushdown).
//
// Two backends ship today. "memory" wraps the existing in-memory stores as
// the reference implementation — full pushdown, nothing survives a restart;
// it is the semantics every durable backend must match and the baseline the
// equivalence tests pin against. "wal" gives the same engines a durable
// path: every applied mutation (kvstore put/delete, timeseries append,
// relational insert and schema change) is journaled as a typed record into a
// write-ahead log with fsync-batched group commit, replayed on boot, and
// compacted into a snapshot once the log passes a size threshold.
//
// The correctness seam is the version vector. Every store's monotonic
// mutation counter keys the serving layer's result and subplan caches; each
// WAL record carries the counter value its mutation produced, the snapshot
// header persists the counters at snapshot time, and recovery pins the
// restored counters to those watermarks plus one epoch bump — so a
// post-restart version vector is always strictly past any value an
// acknowledged pre-crash state ever presented, and cache keys can never
// alias stale pre-restart entries.
package backend

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"polystorepp/internal/kvstore"
	"polystorepp/internal/relational"
	"polystorepp/internal/timeseries"
)

// ErrClosed is returned by operations on a closed backend.
var ErrClosed = errors.New("backend: closed")

// Backend is one storage substrate hosting the native engines' stores.
// Lifecycle: Open (via the Registry) → Attach* each store → Recover (load
// any persisted state into the attached, still-empty stores) → seed if
// Recover found nothing → Start (begin journaling new mutations) → serve,
// calling Barrier after each acknowledged write batch → Close.
type Backend interface {
	// Kind returns the registry name ("memory", "wal").
	Kind() string
	// Capabilities reports what the backend executes natively.
	Capabilities() Capabilities

	// AttachKV, AttachTimeseries and AttachRelational bind engine stores to
	// the backend under their engine names. Attach before Recover/Start.
	AttachKV(name string, s *kvstore.Store)
	AttachTimeseries(name string, s *timeseries.Store)
	AttachRelational(name string, s *relational.Store)

	// Recover loads persisted state (snapshot, then WAL replay) into the
	// attached stores and advances their version counters past the persisted
	// watermarks. Recovered reports whether any persisted state existed —
	// when false the caller should seed and Checkpoint.
	Recover() (RecoverStats, error)
	// Start installs the journal taps on the attached stores and opens the
	// active log segment; mutations from here on are captured.
	Start() error
	// Barrier blocks until every mutation journaled so far is durable under
	// the configured sync policy. The write path calls it before
	// acknowledging a client write.
	Barrier(ctx context.Context) error
	// Checkpoint forces a snapshot of the attached stores and truncates the
	// log to records newer than it.
	Checkpoint() error
	// Stats reports durability counters for /stats and /metrics.
	Stats() Stats
	// Close stops journaling, makes the log durable and releases files.
	Close() error
}

// RecoverStats describes one boot-time recovery pass.
type RecoverStats struct {
	// Recovered is true when any persisted state (snapshot or log records)
	// was found — including records that could not be applied (Skipped), so
	// a misconfigured boot never seeds and compacts over acknowledged data.
	Recovered bool
	// SnapshotLoaded is true when a snapshot file was loaded.
	SnapshotLoaded bool
	// Records/Skipped/Bytes count replayed log records: applied, skipped as
	// already covered by the snapshot (or unroutable), and payload bytes read.
	Records uint64
	Skipped uint64
	Bytes   uint64
	// Truncated is true when replay stopped at a torn or corrupt record (the
	// expected crash signature: an un-fsynced tail).
	Truncated bool
}

// Stats is the durability counter set a backend exposes. Zero-valued (with
// Durable false) for backends with nothing to report.
type Stats struct {
	Kind         string
	Durable      bool
	SyncPolicy   string
	Capabilities string

	WALAppends      uint64 // records journaled
	WALBytes        uint64 // framed bytes appended
	WALFsyncs       uint64 // fsync calls issued
	WALErrors       uint64 // write/fsync failures (sticky; Barrier surfaces them)
	WALSegmentBytes int64  // bytes in the active segment (snapshot trigger input)

	ReplayRecords   uint64 // records applied during the last recovery
	ReplaySkipped   uint64 // records skipped (covered by snapshot or unroutable)
	ReplayBytes     uint64 // payload bytes read during the last recovery
	ReplayTruncated uint64 // 1 when replay stopped at a torn tail
	ReplaySnapshot  uint64 // 1 when a snapshot was loaded during recovery

	SnapshotWrites    uint64 // snapshots written since open
	SnapshotLastBytes int64  // size of the most recent snapshot
	SnapshotTrigger   int64  // configured WAL size that forces a snapshot
}

// Config parameterizes backend construction. Memory ignores everything but
// Logf; wal requires Dir.
type Config struct {
	// Dir is the durable backend's data directory (created if absent).
	Dir string
	// Sync selects the WAL fsync policy; empty means SyncGroup.
	Sync SyncPolicy
	// SnapshotBytes is the active-segment size that triggers snapshot
	// compaction. 0 means the 8 MiB default; negative disables automatic
	// snapshots (Checkpoint still works).
	SnapshotBytes int64
	// Logf, when set, receives recovery/compaction progress lines.
	Logf func(format string, args ...any)
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Factory constructs a backend of one registered kind.
type Factory func(Config) (Backend, error)

var registry = struct {
	mu sync.RWMutex
	m  map[string]Factory
}{m: make(map[string]Factory)}

// Register installs a named backend constructor. Later registrations of the
// same kind win, so tests can shadow built-ins.
func Register(kind string, f Factory) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.m[kind] = f
}

// Open constructs a backend of the named kind.
func Open(kind string, cfg Config) (Backend, error) {
	registry.mu.RLock()
	f, ok := registry.m[kind]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown kind %q (have %v)", kind, Kinds())
	}
	return f(cfg)
}

// Kinds returns the registered backend kinds, sorted.
func Kinds() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, 0, len(registry.m))
	for k := range registry.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("memory", func(cfg Config) (Backend, error) { return NewMemory(), nil })
	Register("wal", func(cfg Config) (Backend, error) { return OpenDurable(cfg) })
}
