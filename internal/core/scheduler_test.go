package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"

	"polystorepp/internal/adapter"
	"polystorepp/internal/compiler"
	"polystorepp/internal/hw"
	"polystorepp/internal/ir"
	"polystorepp/internal/relational"
)

// fanoutProgram builds a wide DAG: one scan feeding `width` independent
// filter->sort branches, half of them crossing to the ML engine so the plan
// carries migrations too. Every stage past the scan has `width` nodes, so
// the concurrent scheduler engages.
func fanoutProgram(width int) *ir.Graph {
	g := ir.NewGraph()
	scan := g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
	for i := 0; i < width; i++ {
		engine := "db"
		if i%2 == 1 {
			engine = "ml"
		}
		pred := relational.Bin{
			Op: relational.OpGt,
			L:  relational.ColRef{Name: "v"},
			R:  relational.Const{V: int64(i * 50)},
		}
		f := g.Add(ir.OpFilter, engine, map[string]any{"pred": pred}, scan)
		if engine == "db" {
			g.Add(ir.OpSort, "db", map[string]any{
				"order_by": []relational.OrderItem{{Col: "v"}},
			}, f)
		}
	}
	return g
}

// reportsEqual compares everything deterministic about two reports: the
// node set with simulated schedule, latency, energy and migration volume.
// Host wall times are excluded — they vary run to run by construction.
func reportsEqual(t *testing.T, got, want *Report) {
	t.Helper()
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("node count = %d, want %d", len(got.Nodes), len(want.Nodes))
	}
	for i := range want.Nodes {
		g, w := got.Nodes[i], want.Nodes[i]
		if g.Node != w.Node || g.Kind != w.Kind || g.Engine != w.Engine ||
			g.Device != w.Device || g.Native != w.Native ||
			g.RowsIn != w.RowsIn || g.RowsOut != w.RowsOut {
			t.Fatalf("node %d mismatch:\n got %+v\nwant %+v", w.Node, g, w)
		}
		if math.Abs(g.Start-w.Start) > 1e-12 || math.Abs(g.Finish-w.Finish) > 1e-12 {
			t.Fatalf("node %d schedule: got [%v,%v], want [%v,%v]", w.Node, g.Start, g.Finish, w.Start, w.Finish)
		}
		if math.Abs(g.Sim.Seconds-w.Sim.Seconds) > 1e-12 || math.Abs(g.Sim.Joules-w.Sim.Joules) > 1e-12 {
			t.Fatalf("node %d sim cost: got %v, want %v", w.Node, g.Sim, w.Sim)
		}
	}
	if math.Abs(got.Latency-want.Latency) > 1e-12 {
		t.Fatalf("latency = %v, want %v", got.Latency, want.Latency)
	}
	if math.Abs(got.Energy-want.Energy) > 1e-12 {
		t.Fatalf("energy = %v, want %v", got.Energy, want.Energy)
	}
	if got.Migrations != want.Migrations || got.MigratedBytes != want.MigratedBytes {
		t.Fatalf("migrations = %d (%d bytes), want %d (%d bytes)",
			got.Migrations, got.MigratedBytes, want.Migrations, want.MigratedBytes)
	}
}

// resultsEqual compares sink row counts across executors.
func resultsEqual(t *testing.T, got, want *Results) {
	t.Helper()
	if len(got.Sinks) != len(want.Sinks) {
		t.Fatalf("sinks = %v, want %v", got.Sinks, want.Sinks)
	}
	for i, s := range want.Sinks {
		if got.Sinks[i] != s {
			t.Fatalf("sinks = %v, want %v", got.Sinks, want.Sinks)
		}
		if g, w := got.Values[s].Rows(), want.Values[s].Rows(); g != w {
			t.Fatalf("sink %d rows = %d, want %d", s, g, w)
		}
	}
}

// TestConcurrentMatchesSequential runs a wide fan-out multi-engine plan
// through both executors over identically seeded stores and requires the
// same results and byte-identical simulated reports.
func TestConcurrentMatchesSequential(t *testing.T) {
	plan, err := compiler.Compile(fanoutProgram(8), compiler.Options{Level: 3, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	if w := planWidth(plan); w < 8 {
		t.Fatalf("plan width = %d, want >= 8 (fan-out not wide enough to engage the scheduler)", w)
	}

	seqRT := testRuntime(t, 3000, true)
	seqRT.sequential = true
	wantRes, wantRep, err := seqRT.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	conRT := testRuntime(t, 3000, true)
	gotRes, gotRep, err := conRT.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if conRT.Metrics().Counter("core.exec.concurrent").Value() != 1 {
		t.Fatal("plan did not go through the concurrent scheduler")
	}
	resultsEqual(t, gotRes, wantRes)
	reportsEqual(t, gotRep, wantRep)
}

// TestConcurrentSharedRuntimeRace hammers one shared Runtime with the same
// wide plan from many goroutines (run under -race) and checks every
// execution reproduces the sequential baseline's report exactly.
func TestConcurrentSharedRuntimeRace(t *testing.T) {
	plan, err := compiler.Compile(fanoutProgram(6), compiler.Options{Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	baseRT := testRuntime(t, 1500, false)
	baseRT.sequential = true
	_, wantRep, err := baseRT.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	rt := testRuntime(t, 1500, false)
	const goroutines = 16
	reps := make([]*Report, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, rep, err := rt.Execute(context.Background(), plan)
			reps[i], errs[i] = rep, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		reportsEqual(t, reps[i], wantRep)
	}
}

// TestConcurrentWideFirstStage regression-tests the seed loop against
// double dispatch: with a wide producer-less first stage, workers finish
// early stage-0 nodes and enqueue their consumers while the seed loop is
// still iterating. Seeding on the live waits counter used to dispatch such
// a consumer twice (panic: close of closed channel).
func TestConcurrentWideFirstStage(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	g := ir.NewGraph()
	for i := 0; i < 768; i++ {
		scan := g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
		pred := relational.Bin{
			Op: relational.OpGt,
			L:  relational.ColRef{Name: "v"},
			R:  relational.Const{V: int64(i)},
		}
		g.Add(ir.OpFilter, "db", map[string]any{"pred": pred}, scan)
	}
	plan, err := compiler.Compile(g, compiler.Options{Level: 0})
	if err != nil {
		t.Fatal(err)
	}
	rt := testRuntime(t, 200, false)
	for round := 0; round < 5; round++ {
		res, _, err := rt.Execute(context.Background(), plan)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(res.Sinks) != 768 {
			t.Fatalf("round %d: sinks = %d", round, len(res.Sinks))
		}
	}
}

// TestConcurrentErrorMatchesSequential checks both executors surface the
// same earliest-in-topo-order failure on a plan with a broken branch.
func TestConcurrentErrorMatchesSequential(t *testing.T) {
	g := fanoutProgram(4)
	// A scan of a missing table fails during real execution.
	bad := g.Add(ir.OpScan, "db", map[string]any{"table": "missing"})
	g.Add(ir.OpSort, "db", map[string]any{
		"order_by": []relational.OrderItem{{Col: "v"}},
	}, bad)
	plan, err := compiler.Compile(g, compiler.Options{Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	seqRT := testRuntime(t, 500, false)
	seqRT.sequential = true
	_, _, seqErr := seqRT.Execute(context.Background(), plan)
	if seqErr == nil {
		t.Fatal("sequential executor did not fail")
	}
	conRT := testRuntime(t, 500, false)
	_, _, conErr := conRT.Execute(context.Background(), plan)
	if conErr == nil {
		t.Fatal("concurrent executor did not fail")
	}
	if !errors.Is(conErr, ErrExec) || conErr.Error() != seqErr.Error() {
		t.Fatalf("error mismatch:\n concurrent: %v\n sequential: %v", conErr, seqErr)
	}
}

// TestConcurrentHonorsContext mirrors TestExecuteHonorsContext for the
// concurrent path.
func TestConcurrentHonorsContext(t *testing.T) {
	rt := testRuntime(t, 100, false)
	plan, err := compiler.Compile(fanoutProgram(4), compiler.Options{Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := rt.Execute(ctx, plan); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled: %v", err)
	}
}

// TestChargeKernelPinnedDevice checks an explicit device annotation is
// honored: the work lands on the named accelerator even when the cost model
// would have kept it on the host.
func TestChargeKernelPinnedDevice(t *testing.T) {
	rt := testRuntime(t, 64, true) // 64 rows: auto choice would stay on host
	g := sortProgram()
	plan, err := compiler.Compile(g, compiler.Options{Level: 3, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range plan.Graph.Nodes() {
		if n.Kind == ir.OpSort {
			n.Device = hw.NewFPGA().Name
		}
	}
	_, rep, err := rt.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	fpga := hw.NewFPGA().Name
	found := false
	for _, n := range rep.Nodes {
		if n.Kind == ir.OpSort {
			found = true
			if n.Device != fpga {
				t.Fatalf("pinned sort ran on %q, want %q", n.Device, fpga)
			}
		}
	}
	if !found {
		t.Fatal("no sort node in report")
	}
	if rt.Metrics().Counter("core.offloads."+fpga).Value() == 0 {
		t.Fatal("pinned offload not counted")
	}
}

// TestChargeKernelUnknownDevice checks naming a device the deployment does
// not have fails the query instead of silently costing on the host.
func TestChargeKernelUnknownDevice(t *testing.T) {
	rt := testRuntime(t, 64, true)
	plan, err := compiler.Compile(sortProgram(), compiler.Options{Level: 3, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range plan.Graph.Nodes() {
		if n.Kind == ir.OpSort {
			n.Device = "tpu-v9000"
		}
	}
	_, _, err = rt.Execute(context.Background(), plan)
	if !errors.Is(err, ErrNoDevice) {
		t.Fatalf("unknown device error = %v, want ErrNoDevice", err)
	}
}

// TestChargeKernelHostPin checks pinning to the host device by name stays
// on the host without error.
func TestChargeKernelHostPin(t *testing.T) {
	rt := testRuntime(t, 400_000, true) // big enough that auto would offload
	plan, err := compiler.Compile(sortProgram(), compiler.Options{Level: 3, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	host := hw.NewHostCPU().Name
	for _, n := range plan.Graph.Nodes() {
		if n.Kind == ir.OpSort {
			n.Device = host
		}
	}
	_, rep, err := rt.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Nodes {
		if n.Kind == ir.OpSort && n.Device != host {
			t.Fatalf("host-pinned sort ran on %q", n.Device)
		}
	}
}

// TestPlanWidthFastPath checks chain-shaped plans skip the scheduler.
func TestPlanWidthFastPath(t *testing.T) {
	rt := testRuntime(t, 100, false)
	plan, err := compiler.Compile(sortProgram(), compiler.Options{Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if rt.Metrics().Counter("core.exec.concurrent").Value() != 0 {
		t.Fatal("chain plan went through the concurrent scheduler")
	}
	if rt.Metrics().Counter("core.exec.sequential").Value() != 1 {
		t.Fatal("chain plan not counted as sequential")
	}
}

// TestConsumerIndex sanity-checks the ir adjacency helper the scheduler
// relies on.
func TestConsumerIndex(t *testing.T) {
	g := fanoutProgram(3)
	idx := g.ConsumerIndex()
	for id, consumers := range idx {
		for _, c := range consumers {
			n := g.MustNode(c)
			found := false
			for _, in := range n.Inputs {
				if in == id {
					found = true
				}
			}
			if !found {
				t.Fatalf("index lists %d as consumer of %d but it has inputs %v", c, id, n.Inputs)
			}
		}
	}
	// Every edge must be covered.
	for _, n := range g.Nodes() {
		for _, in := range n.Inputs {
			covered := false
			for _, c := range idx[in] {
				if c == n.ID {
					covered = true
				}
			}
			if !covered {
				t.Fatalf("edge %d->%d missing from index", in, n.ID)
			}
		}
	}
}

// TestRuntimeDataVersion checks the runtime's aggregate version moves on
// store mutations.
func TestRuntimeDataVersion(t *testing.T) {
	store := testStore(t, 10)
	rt := NewRuntime(hw.NewHostCPU())
	rt.Register(adapter.NewRelational("db", relational.NewEngine(store)))
	rt.Register(adapter.NewML("ml", 1)) // pure adapter: no version contribution

	v0 := rt.DataVersion()
	tb, err := store.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(int64(10_000), int64(1)); err != nil {
		t.Fatal(err)
	}
	if v1 := rt.DataVersion(); v1 <= v0 {
		t.Fatalf("version did not advance on insert: %d -> %d", v0, v1)
	}
}
