package core

import (
	"context"
	"fmt"
	"sort"

	"polystorepp/internal/adapter"
	"polystorepp/internal/compiler"
	"polystorepp/internal/ir"
	"polystorepp/internal/obs"
	"polystorepp/internal/subplan"
	"polystorepp/internal/tenant"
)

// Subplan cache integration: before a plan executes, the runtime probes the
// content-addressed subplan cache for each of the plan's cacheable subtrees
// (compiler.Plan.Subtrees). A hit marks the whole subtree served: every
// node in its closure skips real execution inside runNode, the root yields
// the memoized batch, and the coordinator still costs each node from the
// entry's replay data in topological order over the shared reservation
// ledger — so warm Reports are byte-identical to cold ones (modulo host
// wall times, like everything else the executors exclude). Misses elect a
// per-key single-flight leader so concurrent plans sharing a hot subtree
// execute it once; everyone who executes a candidate publishes it when the
// root's run is costed, guarded by a version-vector re-check so a write to
// a touched store mid-flight suppresses the publication.

// DefaultSubplanCacheBytes bounds the subplan cache when no explicit size
// is configured.
const DefaultSubplanCacheBytes int64 = 64 << 20

// subplanState bundles the cache with its single-flight coordinator. It
// hangs off the Runtime behind an atomic pointer so the serving layer can
// install, resize, or disable it while requests are in flight; an
// execution captures the state once at prepare time and uses that capture
// throughout, so a swap mid-flight never strands a lease.
type subplanState struct {
	cache  *subplan.Cache
	flight *subplan.Flight
}

// WithSubplanCacheBytes sizes the runtime's subplan cache: 0 keeps the
// default (DefaultSubplanCacheBytes), negative disables the cache.
func WithSubplanCacheBytes(n int64) Option {
	return func(r *Runtime) { r.subplanBytes = n }
}

// ConfigureSubplanCache installs a fresh subplan cache bounded to n bytes
// (0 means the default size), or disables subplan caching when n is
// negative. Safe to call while plans execute: in-flight executions keep
// the state they started with, and the old cache drains by garbage
// collection.
func (r *Runtime) ConfigureSubplanCache(n int64) {
	r.ConfigureSubplanCacheShared(n, 0)
}

// ConfigureSubplanCacheShared is ConfigureSubplanCache with an explicit
// per-tenant byte share (see subplan.NewCacheShared).
func (r *Runtime) ConfigureSubplanCacheShared(n int64, share float64) {
	if n < 0 {
		r.subplan.Store(nil)
		return
	}
	if n == 0 {
		n = DefaultSubplanCacheBytes
	}
	r.subplan.Store(&subplanState{cache: subplan.NewCacheShared(n, share), flight: subplan.NewFlight()})
}

// SubplanCacheStats is the structural snapshot /stats and /metrics expose.
type SubplanCacheStats struct {
	Enabled   bool
	Entries   int
	Bytes     int64
	MaxBytes  int64
	Evictions int64
	Owners    int
}

// SubplanCacheStats snapshots the subplan cache (zero value when disabled).
func (r *Runtime) SubplanCacheStats() SubplanCacheStats {
	sp := r.subplan.Load()
	if sp == nil {
		return SubplanCacheStats{}
	}
	s := sp.cache.Stats()
	return SubplanCacheStats{
		Enabled:   true,
		Entries:   s.Entries,
		Bytes:     s.Bytes,
		MaxBytes:  s.MaxBytes,
		Evictions: s.Evictions,
		Owners:    s.Owners,
	}
}

// SubplanOwnerBytes snapshots per-tenant subplan cache charges (nil when
// the cache is disabled).
func (r *Runtime) SubplanOwnerBytes() map[string]int64 {
	sp := r.subplan.Load()
	if sp == nil {
		return nil
	}
	return sp.cache.OwnerBytes()
}

// pendingPub is one subtree this execution will publish when its root's
// run has been costed.
type pendingPub struct {
	sub compiler.Subtree
	key string
	vv  string
}

// planProbe is one execution's subplan-cache decision state. It is built
// before any node runs (prepareSubplan), consulted from runNode in both
// executors (read-only maps, safe under worker concurrency), and fed
// finished runs by the coordinator (single goroutine) for publication.
// All methods tolerate a nil receiver so the disabled path stays free.
type planProbe struct {
	rt *Runtime
	sp *subplanState
	// tenant is who this execution runs for, captured at prepare time; the
	// cache charges published entries to it.
	tenant string
	// serve maps every node covered by a cache hit to its replay cost;
	// hit roots additionally appear in out with the memoized batch.
	// Interior served nodes yield an empty value — closedness guarantees
	// nothing outside the closure reads them.
	serve map[ir.NodeID]*subplan.NodeCost
	out   map[ir.NodeID]adapter.Value
	// capture marks nodes whose finished runs must be retained for a
	// pending publication; runs collects them as the coordinator costs
	// nodes in topological order.
	capture map[ir.NodeID]bool
	runs    map[ir.NodeID]*nodeRun
	pubs    map[ir.NodeID]pendingPub
	// leases are the single-flight keys this execution leads; released on
	// every exit path (close), after any publications.
	leases []string
}

// subplanKey joins a subtree fingerprint with the version vector of the
// stores it touches — the full content address of a memoized intermediate.
func subplanKey(fingerprint, vv string) string { return fingerprint + "|" + vv }

// shortKey abbreviates a cache key for trace events.
func shortKey(key string) string {
	if len(key) > 16 {
		return key[:16]
	}
	return key
}

// prepareSubplan probes the subplan cache for the plan's candidate
// subtrees and decides, per candidate: serve from cache (hit), wait for a
// concurrent leader producing the same key (single-flight), or execute and
// publish. Returns nil when the cache is disabled or the plan has no
// candidates — the executors then skip all per-node bookkeeping.
func (r *Runtime) prepareSubplan(ctx context.Context, plan *compiler.Plan) *planProbe {
	sp := r.subplan.Load()
	if sp == nil || len(plan.Subtrees) == 0 {
		return nil
	}
	tr := obs.From(ctx)
	pr := &planProbe{
		rt:      r,
		sp:      sp,
		tenant:  tenant.From(ctx),
		serve:   make(map[ir.NodeID]*subplan.NodeCost),
		out:     make(map[ir.NodeID]adapter.Value),
		capture: make(map[ir.NodeID]bool),
		runs:    make(map[ir.NodeID]*nodeRun),
		pubs:    make(map[ir.NodeID]pendingPub),
	}
	covered := make(map[ir.NodeID]bool)

	// Phase 1: probe outermost-first (Plan.Subtrees orders candidates by
	// closure size). Closed candidates are nested or disjoint, so a hit
	// covers every candidate inside it.
	var misses []pendingPub
	for _, st := range plan.Subtrees {
		if covered[st.Root] {
			continue
		}
		vv := r.VersionVector(st.Touches)
		key := subplanKey(st.Fingerprint, vv)
		if e := pr.lookup(key, len(st.Closure)); e != nil {
			pr.admitHit(st, e, covered)
			if tr != nil {
				tr.Event("cache.subplan", fmt.Sprintf("hit root=%d nodes=%d bytes=%d key=%s",
					st.Root, len(st.Closure), e.Bytes, shortKey(key)))
			}
			continue
		}
		r.reg.Counter("core.subplan.misses").Inc()
		if tr != nil {
			tr.Event("cache.subplan", fmt.Sprintf("miss root=%d nodes=%d key=%s",
				st.Root, len(st.Closure), shortKey(key)))
		}
		misses = append(misses, pendingPub{sub: st, key: key, vv: vv})
	}

	// Phase 2: single-flight the maximal misses (the pairwise-disjoint
	// outermost ones), in sorted-key order. Every concurrent execution
	// acquires and waits in the same global key order, so hold-and-wait
	// cycles between plans leading each other's subtrees cannot form.
	maximal := maximalMisses(misses)
	sort.Slice(maximal, func(i, j int) bool { return maximal[i].key < maximal[j].key })
	leased := make(map[string]bool)
	for _, m := range maximal {
		if covered[m.sub.Root] || leased[m.key] {
			continue
		}
		const attempts = 3
		for i := 0; i < attempts; i++ {
			leader, done := sp.flight.Acquire(m.key)
			if leader {
				pr.leases = append(pr.leases, m.key)
				leased[m.key] = true
				break
			}
			r.reg.Counter("core.subplan.flight_waits").Inc()
			select {
			case <-done:
			case <-ctx.Done():
				i = attempts // deadline: run the subtree ourselves
				continue
			}
			if e := pr.lookup(m.key, len(m.sub.Closure)); e != nil {
				pr.admitHit(m.sub, e, covered)
				if tr != nil {
					tr.Event("cache.subplan", fmt.Sprintf("flight-hit root=%d nodes=%d bytes=%d key=%s",
						m.sub.Root, len(m.sub.Closure), e.Bytes, shortKey(m.key)))
				}
				break
			}
			// Leader released without publishing (error, oversized entry,
			// eviction): contend for the lease again.
		}
	}

	// Phase 3: every candidate that still executes publishes on completion
	// — inner candidates too, for extra hit surface. Duplicate keys inside
	// one plan (identical sibling subtrees) publish once; the second copy
	// just executes.
	pubKeys := make(map[string]bool, len(misses))
	for _, m := range misses {
		if covered[m.sub.Root] || pubKeys[m.key] {
			continue
		}
		pubKeys[m.key] = true
		pr.pubs[m.sub.Root] = m
		for _, id := range m.sub.Closure {
			pr.capture[id] = true
		}
	}

	r.reg.Counter("core.subplan.plans_probed").Inc()
	if len(pr.out) > 0 {
		r.reg.Counter("core.subplan.plans_reused").Inc()
	}
	if len(pr.serve) == 0 && len(pr.pubs) == 0 && len(pr.leases) == 0 {
		return nil
	}
	return pr
}

// maximalMisses filters the missed candidates down to those not contained
// in another miss — the units single-flight coordinates on. Containment is
// root membership: closed subtrees are nested or disjoint.
func maximalMisses(misses []pendingPub) []pendingPub {
	if len(misses) <= 1 {
		return misses
	}
	inner := make(map[ir.NodeID]bool)
	for _, m := range misses {
		for _, id := range m.sub.Closure {
			if id != m.sub.Root {
				inner[id] = true
			}
		}
	}
	out := make([]pendingPub, 0, len(misses))
	for _, m := range misses {
		if !inner[m.sub.Root] {
			out = append(out, m)
		}
	}
	return out
}

// lookup probes the cache, counting a hit only for well-formed entries
// whose replay data matches the candidate's closure size.
func (pr *planProbe) lookup(key string, closureLen int) *subplan.Entry {
	e, ok := pr.sp.cache.Get(key)
	if !ok || e.Output == nil || len(e.Costs) != closureLen {
		return nil
	}
	pr.rt.reg.Counter("core.subplan.hits").Inc()
	return e
}

// admitHit marks a subtree served: every closure node replays from the
// entry, the root yields the memoized batch, and the covered set grows so
// inner candidates are skipped.
func (pr *planProbe) admitHit(st compiler.Subtree, e *subplan.Entry, covered map[ir.NodeID]bool) {
	for i, id := range st.Closure {
		covered[id] = true
		pr.serve[id] = &e.Costs[i]
	}
	pr.out[st.Root] = adapter.Value{Batch: e.Output}
	pr.rt.reg.Counter("core.subplan.nodes_served").Add(int64(len(st.Closure)))
	pr.rt.reg.Counter("core.subplan.bytes_served").Add(e.Bytes)
}

// serveNode returns a synthesized run for a node covered by a cache hit
// (nil otherwise). The run carries the entry's replay data, so costing and
// operator stats see exactly what the cold execution recorded; hit roots
// carry the memoized batch, and when the root is the streamed sink the
// batch replays through the ResultSink in the same chunk cadence live
// execution uses.
func (pr *planProbe) serveNode(ctx context.Context, n *ir.Node, st *nodeStream) *nodeRun {
	if pr == nil {
		return nil
	}
	cost, ok := pr.serve[n.ID]
	if !ok {
		return nil
	}
	run := &nodeRun{
		info:      cost.Info,
		bd:        cost.BD,
		isMigrate: cost.IsMigrate,
		rows:      cost.Rows,
		bytesIn:   cost.BytesIn,
		bytesOut:  cost.BytesOut,
		cached:    true,
	}
	if out, ok := pr.out[n.ID]; ok {
		run.out = out
		if st != nil && st.node == n.ID {
			if err := adapter.EmitChunked(ctx, st.emit, out.Batch); err != nil {
				run.err = err
				return run
			}
			if err := st.finish(out); err != nil {
				run.err = err
			}
		}
	}
	return run
}

// onNodeCosted feeds the coordinator's finished runs to the pending
// publications. Called in topological order from a single goroutine, so
// when a pub's root arrives every closure run has been captured.
func (pr *planProbe) onNodeCosted(id ir.NodeID, run *nodeRun) {
	if pr == nil || !pr.capture[id] {
		return
	}
	pr.runs[id] = run
	if pub, ok := pr.pubs[id]; ok {
		pr.publish(pub)
	}
}

// publish memoizes one executed subtree: per-node replay data plus a deep
// copy of the root's output (engine batches can be zero-copy views of
// storage; the cache must hold an immutable snapshot). The version vector
// is re-checked against its prepare-time value so a write to a touched
// store while the subtree executed suppresses the publication — the batch
// belongs to neither the old version nor reliably the new one.
func (pr *planProbe) publish(pub pendingPub) {
	if pr.rt.VersionVector(pub.sub.Touches) != pub.vv {
		pr.rt.reg.Counter("core.subplan.stale_skips").Inc()
		return
	}
	costs := make([]subplan.NodeCost, len(pub.sub.Closure))
	var root *nodeRun
	for i, id := range pub.sub.Closure {
		run := pr.runs[id]
		if run == nil || run.err != nil {
			return
		}
		costs[i] = subplan.NodeCost{
			Info:      run.info,
			IsMigrate: run.isMigrate,
			BD:        run.bd,
			Rows:      run.rows,
			BytesIn:   run.bytesIn,
			BytesOut:  run.bytesOut,
		}
		if id == pub.sub.Root {
			root = run
		}
	}
	if root == nil || root.out.Batch == nil {
		return // non-tabular root: nothing to memoize
	}
	e := &subplan.Entry{
		Output: root.out.Batch.Clone(),
		Costs:  costs,
		Bytes:  root.out.Batch.ByteSize(),
	}
	if pr.sp.cache.Put(pub.key, e, pr.tenant) {
		pr.rt.reg.Counter("core.subplan.published").Inc()
	} else {
		pr.rt.reg.Counter("core.subplan.bypassed").Inc()
	}
}

// close releases every single-flight lease this execution holds. Runs on
// every exit path; followers then re-probe — a hit if we published, a
// fresh leader election if we failed.
func (pr *planProbe) close() {
	if pr == nil {
		return
	}
	for _, k := range pr.leases {
		pr.sp.flight.Release(k)
	}
	pr.leases = nil
}
