// Package core implements the Polystore++ middleware (Figure 4): the
// runtime that executes compiled plans across data-processing engines and
// hardware accelerators. It owns the executor (stage-ordered node
// execution, §IV-D), the runtime optimizer's device selection (LogCA-style
// cost comparison per kernel call), the data migrator invocation on
// cross-engine edges, and the runtime-statistics registry the paper calls
// out as a prerequisite for optimization (§IV-D-d).
//
// Simulated time is scheduled explicitly: each node starts when its inputs
// have finished and its device is free, so the report's end-to-end latency
// reflects DAG parallelism and device contention rather than host wall
// time.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"polystorepp/internal/adapter"
	"polystorepp/internal/cast"
	"polystorepp/internal/compiler"
	"polystorepp/internal/hw"
	"polystorepp/internal/ir"
	"polystorepp/internal/metrics"
	"polystorepp/internal/migrate"
)

// Sentinel errors.
var (
	ErrNoAdapter = errors.New("core: no adapter for engine")
	ErrExec      = errors.New("core: execution")
)

// Runtime executes compiled plans. Construct with NewRuntime; register one
// adapter per engine instance.
type Runtime struct {
	adapters map[string]adapter.Adapter
	host     *hw.Device
	accels   []*hw.Device
	mode     hw.Mode
	migrator *migrate.Migrator
	reg      *metrics.Registry
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithAccelerators attaches accelerator devices in the given deployment
// mode; the runtime offloads kernels to them when profitable.
func WithAccelerators(mode hw.Mode, devices ...*hw.Device) Option {
	return func(r *Runtime) {
		r.mode = mode
		r.accels = append(r.accels, devices...)
	}
}

// WithMigrator overrides the default migrator.
func WithMigrator(m *migrate.Migrator) Option {
	return func(r *Runtime) { r.migrator = m }
}

// NewRuntime returns a runtime with the given host CPU model.
func NewRuntime(host *hw.Device, opts ...Option) *Runtime {
	r := &Runtime{
		adapters: make(map[string]adapter.Adapter),
		host:     host,
		mode:     hw.Coprocessor,
		reg:      metrics.NewRegistry(),
	}
	for _, o := range opts {
		o(r)
	}
	if r.migrator == nil {
		r.migrator = migrate.New(host, hw.NewRDMANIC())
	}
	r.preloadKernels()
	return r
}

// preloadKernels loads the deployment's standing kernel library onto the
// reconfigurable devices (the "configuration parameters" of Figure 4:
// bitstreams are synthesized offline and loaded at deployment, so steady
// state pays no reconfiguration). Kernels that do not fit the area budget
// are simply not preloaded; a later Offload may still swap them in.
func (r *Runtime) preloadKernels() {
	fpgaSet := []hw.KernelClass{
		hw.KSort, hw.KFilter, hw.KProject, hw.KSerialize, hw.KDeserialize, hw.KWindowAgg,
	}
	cgraSet := []hw.KernelClass{
		hw.KSort, hw.KFilter, hw.KProject, hw.KGEMM, hw.KGEMV, hw.KWindowAgg, hw.KKMeansAssign,
	}
	for _, d := range r.accels {
		var set []hw.KernelClass
		switch d.Kind {
		case hw.FPGA:
			set = fpgaSet
		case hw.CGRA:
			set = cgraSet
		default:
			continue
		}
		for _, k := range set {
			// Best effort: budget overruns just leave the kernel unloaded.
			_, _ = d.ConfigureKernel(k.String(), hw.LUTCost(k))
		}
	}
}

// Register adds an adapter for its engine name.
func (r *Runtime) Register(a adapter.Adapter) {
	r.adapters[a.Engine()] = a
}

// Metrics returns the runtime-statistics registry.
func (r *Runtime) Metrics() *metrics.Registry { return r.reg }

// HasEngine reports whether an adapter is registered under name.
func (r *Runtime) HasEngine(name string) bool {
	_, ok := r.adapters[name]
	return ok
}

// Engines returns the registered engine instance names, sorted.
func (r *Runtime) Engines() []string {
	out := make([]string, 0, len(r.adapters))
	for name := range r.adapters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NodeReport records one node's execution.
type NodeReport struct {
	Node    ir.NodeID
	Kind    ir.OpKind
	Engine  string
	Device  string
	Native  string
	RowsIn  int64
	RowsOut int64
	Wall    time.Duration
	Sim     hw.Cost
	// Start/Finish are simulated times on the global clock.
	Start, Finish float64
}

// Report is the execution outcome of a plan.
type Report struct {
	Nodes []NodeReport
	// Latency is the simulated end-to-end latency (max sink finish time).
	Latency float64
	// Energy is the total simulated energy across devices.
	Energy float64
	// Wall is the measured host execution time.
	Wall time.Duration
	// Migrations counts cross-engine transfers; MigratedBytes their volume.
	Migrations    int
	MigratedBytes int64
}

// String renders a compact per-node table.
func (rep *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "latency=%.6fs energy=%.3fJ wall=%s migrations=%d (%d bytes)\n",
		rep.Latency, rep.Energy, rep.Wall, rep.Migrations, rep.MigratedBytes)
	for _, n := range rep.Nodes {
		fmt.Fprintf(&sb, "  %3d %-14s %-10s dev=%-14s rows=%d->%d sim=%.6fs %s\n",
			n.Node, n.Kind, n.Engine, n.Device, n.RowsIn, n.RowsOut, n.Sim.Seconds, n.Native)
	}
	return sb.String()
}

// Results holds the sink outputs of a plan keyed by node id.
type Results struct {
	Values map[ir.NodeID]adapter.Value
	Sinks  []ir.NodeID
}

// First returns the first sink's value (plans with one output).
func (res *Results) First() adapter.Value {
	if len(res.Sinks) == 0 {
		return adapter.Value{}
	}
	return res.Values[res.Sinks[0]]
}

// Execute runs the plan and returns its sink values and the report.
func (r *Runtime) Execute(ctx context.Context, plan *compiler.Plan) (*Results, *Report, error) {
	t0 := time.Now()
	g := plan.Graph
	values := make(map[ir.NodeID]adapter.Value, g.Len())
	finish := make(map[ir.NodeID]float64, g.Len())
	devFree := make(map[*hw.Device]float64)
	rep := &Report{}

	order, err := g.TopoSort()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrExec, err)
	}
	for _, id := range order {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		n := g.MustNode(id)
		inputs := make([]adapter.Value, len(n.Inputs))
		start := 0.0
		for i, in := range n.Inputs {
			inputs[i] = values[in]
			if finish[in] > start {
				start = finish[in]
			}
		}
		nr, out, err := r.executeNode(ctx, plan, n, inputs, start, devFree, rep)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: node %d (%s): %w", ErrExec, id, n.Kind, err)
		}
		values[id] = out
		finish[id] = nr.Finish
		rep.Nodes = append(rep.Nodes, nr)
		rep.Energy += nr.Sim.Joules
		r.reg.Counter("core.nodes").Inc()
		r.reg.Timer("core.node." + n.Kind.String()).Observe(nr.Wall)
	}
	sinks := g.Sinks()
	for _, s := range sinks {
		if finish[s] > rep.Latency {
			rep.Latency = finish[s]
		}
	}
	rep.Wall = time.Since(t0)
	sort.Slice(rep.Nodes, func(i, j int) bool { return rep.Nodes[i].Node < rep.Nodes[j].Node })
	return &Results{Values: values, Sinks: sinks}, rep, nil
}

// executeNode runs one node, charges simulated cost, and schedules it on
// the simulated clock.
func (r *Runtime) executeNode(ctx context.Context, plan *compiler.Plan, n *ir.Node, inputs []adapter.Value, start float64, devFree map[*hw.Device]float64, rep *Report) (NodeReport, adapter.Value, error) {
	nr := NodeReport{Node: n.ID, Kind: n.Kind, Engine: n.Engine, Start: start}
	t0 := time.Now()

	if n.Kind == ir.OpMigrate {
		out, bd, err := r.executeMigrate(ctx, n, inputs)
		if err != nil {
			return nr, adapter.Value{}, err
		}
		rep.Migrations++
		rep.MigratedBytes += bd.WireBytes
		nr.Wall = time.Since(t0)
		nr.Sim = bd.Sim
		nr.Device = "dm/" + migrate.Transport(n.IntAttr("transport")).String()
		nr.Native = fmt.Sprintf("Migrate(%s->%s, %s)", n.StringAttr("from"), n.StringAttr("to"), migrate.Transport(n.IntAttr("transport")))
		nr.RowsIn = int64(out.Rows())
		nr.RowsOut = int64(out.Rows())
		nr.Finish = start + bd.Sim.Seconds
		r.reg.Counter("core.migrations").Inc()
		return nr, adapter.Value{Batch: out}, nil
	}

	a, ok := r.adapters[n.Engine]
	if !ok {
		return nr, adapter.Value{}, fmt.Errorf("%w: %q", ErrNoAdapter, n.Engine)
	}
	out, info, err := a.Execute(ctx, n, inputs)
	if err != nil {
		return nr, adapter.Value{}, err
	}
	nr.Wall = time.Since(t0)
	nr.Native = info.Native
	nr.RowsIn = info.RowsIn
	nr.RowsOut = info.RowsOut
	r.reg.Counter("core.rule_nodes").Add(info.RuleNodes)

	// Cost the kernel calls, choosing devices at runtime (§IV-D-a: "IR
	// mapping to local accelerators ... will ultimately depend on runtime
	// environment and data-dependent analyses").
	clock := start
	devices := map[string]bool{}
	for _, call := range info.Kernels {
		dev, cost, err := r.chargeKernel(n, call)
		if err != nil {
			return nr, adapter.Value{}, err
		}
		devStart := clock
		if devFree[dev] > devStart {
			devStart = devFree[dev]
		}
		clock = devStart + cost.Seconds
		devFree[dev] = clock
		nr.Sim = nr.Sim.AddSeq(cost)
		devices[dev.Name] = true
	}
	names := make([]string, 0, len(devices))
	for d := range devices {
		names = append(names, d)
	}
	sort.Strings(names)
	nr.Device = strings.Join(names, "+")
	if nr.Device == "" {
		nr.Device = r.host.Name
	}
	nr.Finish = clock
	return nr, out, nil
}

// chargeKernel selects the device for one kernel call (honoring the node's
// Device annotation) and charges the cost to it.
func (r *Runtime) chargeKernel(n *ir.Node, call adapter.KernelCall) (*hw.Device, hw.Cost, error) {
	if n.Device != "auto" || len(r.accels) == 0 {
		c, err := r.host.HostCost(call.Class, call.Work)
		if err != nil {
			// Host can't model this kernel: fall back to zero cost rather
			// than failing the query.
			return r.host, hw.Zero, nil
		}
		return r.host, c, nil
	}
	// Runtime device choice: estimate end-to-end cost on the host and on
	// every accelerator supporting the kernel, pick the cheapest, charge it.
	bestDev := r.host
	bestCost, err := r.host.KernelCost(call.Class, call.Work)
	if err != nil {
		bestCost = hw.Zero
	}
	offload := false
	for _, d := range r.accels {
		est, err := estimateOffload(d, r.mode, call)
		if err != nil {
			continue
		}
		if est.Seconds < bestCost.Seconds {
			bestDev, bestCost, offload = d, est, true
		}
	}
	if !offload {
		c, err := r.host.HostCost(call.Class, call.Work)
		if err != nil {
			return r.host, hw.Zero, nil
		}
		return r.host, c, nil
	}
	c, err := bestDev.Offload(r.mode, call.Class, call.Work, call.OutBytes)
	if err != nil {
		// Offload refused (e.g. area budget): run on the host instead.
		hc, herr := r.host.HostCost(call.Class, call.Work)
		if herr != nil {
			return r.host, hw.Zero, nil
		}
		return r.host, hc, nil
	}
	r.reg.Counter("core.offloads." + bestDev.Name).Inc()
	return bestDev, c, nil
}

// estimateOffload predicts offload cost without mutating device state
// (reconfiguration is only counted if the kernel is not already loaded).
func estimateOffload(d *hw.Device, mode hw.Mode, call adapter.KernelCall) (hw.Cost, error) {
	kc, err := d.KernelCost(call.Class, call.Work)
	if err != nil {
		return hw.Zero, err
	}
	total := kc
	if (d.Kind == hw.FPGA || d.Kind == hw.CGRA) && !d.HasKernel(call.Class.String()) {
		total = total.AddSeq(hw.Cost{Seconds: d.ReconfigSeconds})
	}
	switch mode {
	case hw.Coprocessor:
		total = total.AddSeq(d.TransferCost(call.Work.Bytes)).AddSeq(d.TransferCost(call.OutBytes))
	case hw.BumpInTheWire:
		line := d.TransferCost(call.Work.Bytes)
		if line.Seconds > kc.Seconds {
			total = line
		}
	}
	return total, nil
}

// executeMigrate moves the single tabular input across engines.
func (r *Runtime) executeMigrate(ctx context.Context, n *ir.Node, inputs []adapter.Value) (*cast.Batch, migrate.Breakdown, error) {
	if len(inputs) != 1 || inputs[0].Batch == nil {
		return nil, migrate.Breakdown{}, fmt.Errorf("%w: migrate wants one tabular input", ErrExec)
	}
	tr := migrate.Transport(n.IntAttr("transport"))
	out, bd, err := r.migrator.Migrate(ctx, inputs[0].Batch, tr)
	if err != nil {
		return nil, bd, err
	}
	return out, bd, nil
}
