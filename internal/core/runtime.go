// Package core implements the Polystore++ middleware (Figure 4): the
// runtime that executes compiled plans across data-processing engines and
// hardware accelerators. It owns the executor (stage-ordered node
// execution, §IV-D), the runtime optimizer's device selection (LogCA-style
// cost comparison per kernel call), the data migrator invocation on
// cross-engine edges, and the runtime-statistics registry the paper calls
// out as a prerequisite for optimization (§IV-D-d).
//
// Simulated time is scheduled explicitly: each node starts when its inputs
// have finished and its device is free, so the report's end-to-end latency
// reflects DAG parallelism and device contention rather than host wall
// time.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"polystorepp/internal/adapter"
	"polystorepp/internal/cast"
	"polystorepp/internal/compiler"
	"polystorepp/internal/feedback"
	"polystorepp/internal/hw"
	"polystorepp/internal/ir"
	"polystorepp/internal/metrics"
	"polystorepp/internal/migrate"
	"polystorepp/internal/obs"
	"polystorepp/internal/partition"
)

// Sentinel errors.
var (
	ErrNoAdapter = errors.New("core: no adapter for engine")
	ErrExec      = errors.New("core: execution")
	ErrNoDevice  = errors.New("core: unknown device")
)

// defaultEngineWorkers is the per-engine-queue concurrency bound of the DAG
// scheduler. Engines are independent systems in a polystore, so each gets
// its own queue; within one engine a handful of workers captures branch
// parallelism without oversubscribing the host.
const defaultEngineWorkers = 4

// Runtime executes compiled plans. Construct with NewRuntime; register one
// adapter per engine instance.
type Runtime struct {
	adapters map[string]adapter.Adapter
	host     *hw.Device
	accels   []*hw.Device
	mode     hw.Mode
	migrator *migrate.Migrator
	reg      *metrics.Registry
	ops      *obs.OpStats

	// engineWorkers bounds concurrent node executions per engine queue in
	// the DAG scheduler; sequential forces the one-node-at-a-time executor.
	engineWorkers int
	sequential    bool

	// subplan is the content-addressed subplan cache state (subplan.go);
	// nil disables it. subplanBytes carries the construction-time size
	// option (0 default, negative disabled).
	subplan      atomic.Pointer[subplanState]
	subplanBytes int64

	// fb is the adaptive feedback state (feedback.go); nil disables the
	// loop. fbCfg/fbOn carry the construction-time option.
	fb    atomic.Pointer[feedbackState]
	fbCfg feedback.Config
	fbOn  bool

	// barrier, when non-nil, is awaited after every applied ingest so a
	// write is only acknowledged once the storage backend has made it
	// durable (WAL group commit). Nil for in-memory deployments.
	barrier DurabilityBarrier
}

// DurabilityBarrier is the slice of the storage backend contract the runtime
// needs: block until every journaled mutation so far is durable under the
// backend's sync policy. Satisfied by backend.Backend.
type DurabilityBarrier interface {
	Barrier(ctx context.Context) error
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithAccelerators attaches accelerator devices in the given deployment
// mode; the runtime offloads kernels to them when profitable.
func WithAccelerators(mode hw.Mode, devices ...*hw.Device) Option {
	return func(r *Runtime) {
		r.mode = mode
		r.accels = append(r.accels, devices...)
	}
}

// WithMigrator overrides the default migrator.
func WithMigrator(m *migrate.Migrator) Option {
	return func(r *Runtime) { r.migrator = m }
}

// WithEngineWorkers bounds concurrent node executions per engine queue in
// the DAG scheduler (default 4). Values < 1 restore the default.
func WithEngineWorkers(n int) Option {
	return func(r *Runtime) {
		if n >= 1 {
			r.engineWorkers = n
		}
	}
}

// WithSequentialExecutor forces the one-node-at-a-time executor — the
// baseline the concurrent scheduler is verified against, and an ablation
// knob for experiments.
func WithSequentialExecutor() Option {
	return func(r *Runtime) { r.sequential = true }
}

// WithDurabilityBarrier attaches the storage backend's durability barrier:
// Ingest blocks on it after the engine applies a write, so acknowledgement
// implies the mutation is journaled per the backend's sync policy. Nil (the
// default) acknowledges on apply, the in-memory contract.
func WithDurabilityBarrier(b DurabilityBarrier) Option {
	return func(r *Runtime) { r.barrier = b }
}

// NewRuntime returns a runtime with the given host CPU model.
func NewRuntime(host *hw.Device, opts ...Option) *Runtime {
	r := &Runtime{
		adapters:      make(map[string]adapter.Adapter),
		host:          host,
		mode:          hw.Coprocessor,
		reg:           metrics.NewRegistry(),
		ops:           obs.NewOpStats(),
		engineWorkers: defaultEngineWorkers,
	}
	for _, o := range opts {
		o(r)
	}
	if r.migrator == nil {
		r.migrator = migrate.New(host, hw.NewRDMANIC())
	}
	r.ConfigureSubplanCache(r.subplanBytes)
	if r.fbOn {
		r.ConfigureFeedback(r.fbCfg)
	}
	r.preloadKernels()
	return r
}

// preloadKernels loads the deployment's standing kernel library onto the
// reconfigurable devices (the "configuration parameters" of Figure 4:
// bitstreams are synthesized offline and loaded at deployment, so steady
// state pays no reconfiguration). Kernels that do not fit the area budget
// are simply not preloaded; a later Offload may still swap them in.
func (r *Runtime) preloadKernels() {
	fpgaSet := []hw.KernelClass{
		hw.KSort, hw.KFilter, hw.KProject, hw.KSerialize, hw.KDeserialize, hw.KWindowAgg,
	}
	cgraSet := []hw.KernelClass{
		hw.KSort, hw.KFilter, hw.KProject, hw.KGEMM, hw.KGEMV, hw.KWindowAgg, hw.KKMeansAssign,
	}
	for _, d := range r.accels {
		var set []hw.KernelClass
		switch d.Kind {
		case hw.FPGA:
			set = fpgaSet
		case hw.CGRA:
			set = cgraSet
		default:
			continue
		}
		for _, k := range set {
			// Best effort: budget overruns just leave the kernel unloaded.
			_, _ = d.ConfigureKernel(k.String(), hw.LUTCost(k))
		}
	}
}

// Register adds an adapter for its engine name.
func (r *Runtime) Register(a adapter.Adapter) {
	r.adapters[a.Engine()] = a
}

// Metrics returns the runtime-statistics registry.
func (r *Runtime) Metrics() *metrics.Registry { return r.reg }

// OpStats returns the per-(engine, op-kind) execution-statistics registry —
// the input surface for adaptive optimization and benchdiff attribution.
func (r *Runtime) OpStats() *obs.OpStats { return r.ops }

// HasEngine reports whether an adapter is registered under name.
func (r *Runtime) HasEngine(name string) bool {
	_, ok := r.adapters[name]
	return ok
}

// Engines returns the registered engine instance names, sorted.
func (r *Runtime) Engines() []string {
	out := make([]string, 0, len(r.adapters))
	for name := range r.adapters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DataVersion sums the mutation counters of every registered adapter's
// backing store (see adapter.DataVersioner). Any store mutation changes the
// sum, so (plan fingerprint, DataVersion) keys stay valid exactly as long as
// the data they were computed over.
func (r *Runtime) DataVersion() uint64 {
	var v uint64
	for _, a := range r.adapters {
		if dv, ok := a.(adapter.DataVersioner); ok {
			v += dv.DataVersion()
		}
	}
	return v
}

// Ingest routes one serving-path write to the named engine's adapter. With a
// durability barrier attached, the write is acknowledged only after the
// backend reports it durable — an error from the barrier means the mutation
// applied in memory but its journal entry may be lost, and the caller must
// not acknowledge it.
func (r *Runtime) Ingest(ctx context.Context, engine string, w adapter.Ingest) error {
	a, ok := r.adapters[engine]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoAdapter, engine)
	}
	ing, ok := a.(adapter.Ingestor)
	if !ok {
		return fmt.Errorf("%w: engine %q does not accept writes", ErrExec, engine)
	}
	if err := ing.Ingest(ctx, w); err != nil {
		return err
	}
	if r.barrier != nil {
		if err := r.barrier.Barrier(ctx); err != nil {
			return fmt.Errorf("%w: durability barrier: %w", ErrExec, err)
		}
	}
	return nil
}

// VersionVector renders the data versions of exactly the engines (and, for
// relational engines, tables) in t as a canonical "engine=version,..."
// string — the per-engine version vector the serving layer appends to result
// cache keys. Engines whose reads are table-scoped use the adapter's
// ScopedVersion; whole-engine reads use DataVersion; engines that read no
// stored data (pure operators over migrated inputs) and engines without a
// versioner (the ML engine) contribute nothing. Every component is
// monotonic, so two equal vectors bracket an interval in which none of the
// touched data changed — writes to untouched engines change nothing here,
// which is what keeps their cached results addressable.
func (r *Runtime) VersionVector(t compiler.Touches) string {
	var sb strings.Builder
	for _, e := range t.Engines() {
		a, ok := r.adapters[e]
		if !ok {
			continue
		}
		tables := t.ByEngine[e]
		var v uint64
		switch {
		case tables != nil && len(tables) == 0:
			continue // pure dataflow on this engine: no version dependency
		case tables != nil:
			sv, ok := a.(adapter.ScopedVersioner)
			if ok {
				v = sv.ScopedVersion(tables)
				break
			}
			fallthrough
		default:
			dv, ok := a.(adapter.DataVersioner)
			if !ok {
				continue
			}
			v = dv.DataVersion()
		}
		fmt.Fprintf(&sb, "%s=%d,", e, v)
	}
	return sb.String()
}

// NodeReport records one node's execution.
type NodeReport struct {
	Node    ir.NodeID
	Kind    ir.OpKind
	Engine  string
	Device  string
	Native  string
	RowsIn  int64
	RowsOut int64
	Wall    time.Duration
	Sim     hw.Cost
	// Start/Finish are simulated times on the global clock.
	Start, Finish float64
}

// Report is the execution outcome of a plan.
type Report struct {
	Nodes []NodeReport
	// Latency is the simulated end-to-end latency (max sink finish time).
	Latency float64
	// Energy is the total simulated energy across devices.
	Energy float64
	// Wall is the measured host execution time.
	Wall time.Duration
	// Migrations counts cross-engine transfers; MigratedBytes their volume.
	Migrations    int
	MigratedBytes int64
}

// String renders a compact per-node table.
func (rep *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "latency=%.6fs energy=%.3fJ wall=%s migrations=%d (%d bytes)\n",
		rep.Latency, rep.Energy, rep.Wall, rep.Migrations, rep.MigratedBytes)
	for _, n := range rep.Nodes {
		fmt.Fprintf(&sb, "  %3d %-14s %-10s dev=%-14s rows=%d->%d sim=%.6fs %s\n",
			n.Node, n.Kind, n.Engine, n.Device, n.RowsIn, n.RowsOut, n.Sim.Seconds, n.Native)
	}
	return sb.String()
}

// Results holds the sink outputs of a plan keyed by node id.
type Results struct {
	Values map[ir.NodeID]adapter.Value
	Sinks  []ir.NodeID
}

// First returns the first sink's value (plans with one output).
func (res *Results) First() adapter.Value {
	if len(res.Sinks) == 0 {
		return adapter.Value{}
	}
	return res.Values[res.Sinks[0]]
}

// Execute runs the plan and returns its sink values and the report.
//
// Plans whose stage schedule exposes parallelism (any stage wider than one
// node) go through the concurrent DAG scheduler (scheduler.go); chain-shaped
// plans take the sequential path, which has no coordination overhead. Both
// produce identical Results and Reports (modulo host wall times).
func (r *Runtime) Execute(ctx context.Context, plan *compiler.Plan) (*Results, *Report, error) {
	if !r.sequential && planWidth(plan) > 1 {
		return r.executeConcurrent(ctx, plan, nil)
	}
	return r.executeSequential(ctx, plan, nil)
}

// planWidth returns the widest stage of the plan's schedule — the maximum
// number of nodes that can run simultaneously.
func planWidth(plan *compiler.Plan) int {
	w := 0
	for _, stage := range plan.Stages {
		if len(stage) > w {
			w = len(stage)
		}
	}
	return w
}

// executeSequential is the baseline executor: one node at a time in
// topological order, interleaving real execution and simulated costing.
// st, when non-nil, streams the designated sink node's batches (stream.go).
func (r *Runtime) executeSequential(ctx context.Context, plan *compiler.Plan, st *nodeStream) (*Results, *Report, error) {
	t0 := time.Now()
	g := plan.Graph
	values := make(map[ir.NodeID]adapter.Value, g.Len())
	finish := make(map[ir.NodeID]float64, g.Len())
	led := hw.NewReservations()
	rep := &Report{}

	order, err := g.TopoSort()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrExec, err)
	}
	r.reg.Counter("core.exec.sequential").Inc()
	tr := obs.From(ctx)
	pr := r.prepareSubplan(ctx, plan)
	defer pr.close()
	fb := r.prepareFeedback(plan)
	for _, id := range order {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		n := g.MustNode(id)
		inputs := make([]adapter.Value, len(n.Inputs))
		start := 0.0
		for i, in := range n.Inputs {
			inputs[i] = values[in]
			if finish[in] > start {
				start = finish[in]
			}
		}
		run := r.runNode(ctx, n, inputs, st, pr, fb)
		if run.err != nil {
			return nil, nil, fmt.Errorf("%w: node %d (%s): %w", ErrExec, id, n.Kind, run.err)
		}
		nr, err := r.costNode(n, run, start, led)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: node %d (%s): %w", ErrExec, id, n.Kind, err)
		}
		if tr != nil {
			tr.AddSpan(nodeSpan(tr, n, run, nr))
		}
		values[id] = run.out
		finish[id] = nr.Finish
		rep.absorb(nr, run)
		pr.onNodeCosted(id, run)
		fb.observe(n, run)
	}
	rep.finalize(t0, g, finish)
	return &Results{Values: values, Sinks: g.Sinks()}, rep, nil
}

// absorb folds one finished node into the report.
func (rep *Report) absorb(nr NodeReport, run *nodeRun) {
	rep.Nodes = append(rep.Nodes, nr)
	rep.Energy += nr.Sim.Joules
	if run.isMigrate {
		rep.Migrations++
		rep.MigratedBytes += run.bd.WireBytes
	}
}

// finalize computes plan latency from the sink finish times and orders the
// node reports.
func (rep *Report) finalize(t0 time.Time, g *ir.Graph, finish map[ir.NodeID]float64) {
	for _, s := range g.Sinks() {
		if finish[s] > rep.Latency {
			rep.Latency = finish[s]
		}
	}
	rep.Wall = time.Since(t0)
	sort.Slice(rep.Nodes, func(i, j int) bool { return rep.Nodes[i].Node < rep.Nodes[j].Node })
}

// nodeRun is the outcome of a node's real (host) execution, before simulated
// costing. The split lets the concurrent scheduler run the expensive host
// work in parallel while costing stays in deterministic topological order.
type nodeRun struct {
	out  adapter.Value
	info adapter.ExecInfo
	// bd is set for OpMigrate nodes (isMigrate true).
	bd        migrate.Breakdown
	isMigrate bool
	wall      time.Duration
	err       error
	// hostStart is when the real execution began on the host clock; queue is
	// the dispatch-to-run wait stamped by the concurrent scheduler (zero on
	// the sequential path, and only measured for traced executions).
	hostStart time.Time
	queue     time.Duration
	// bytesIn/bytesOut approximate the tabular data volume through the node,
	// for the per-operator stats registry and trace spans.
	bytesIn, bytesOut int64
	// rows is the output cardinality. Costing and stats read it instead of
	// out.Rows() because a subplan-cache replay (cached true) synthesizes
	// interior runs without materialized outputs.
	rows   int
	cached bool
	// adaptParts/adaptWas record an adaptive fan-out override applied to
	// this node (feedback.go): it ran at adaptParts instead of the pinned
	// adaptWas. Zero when no override applied; surfaced on trace spans.
	adaptParts, adaptWas int
}

// runNode performs a node's real work — adapter translation and native
// execution, or data migration — without touching the simulated clock. When
// st designates this node for streaming, output batches flow through the
// sink as the adapter produces them (stream.go). Nodes covered by a
// subplan-cache hit (pr) skip real work entirely and return a synthesized
// run carrying the memoized batch and replay costing. An adaptive fan-out
// override (fb) rides the context so the adapter's partition sizing sees it.
func (r *Runtime) runNode(ctx context.Context, n *ir.Node, inputs []adapter.Value, st *nodeStream, pr *planProbe, fb *fbExec) *nodeRun {
	if run := pr.serveNode(ctx, n, st); run != nil {
		return run
	}
	run := &nodeRun{}
	if o, ok := fb.override(n.ID); ok {
		ctx = partition.WithMaxParts(ctx, o.parts)
		run.adaptParts, run.adaptWas = o.parts, o.was
	}
	t0 := time.Now()
	run.hostStart = t0
	for _, in := range inputs {
		run.bytesIn += valueBytes(in)
	}
	if n.Kind == ir.OpMigrate {
		run.isMigrate = true
		out, bd, err := r.executeMigrate(ctx, n, inputs)
		if err != nil {
			run.err = err
			return run
		}
		run.out = adapter.Value{Batch: out}
		run.bd = bd
		run.wall = time.Since(t0)
		run.bytesOut = valueBytes(run.out)
		run.rows = run.out.Rows()
		r.reg.Counter("core.migrations").Inc()
		r.reg.Counter("core.nodes").Inc()
		r.reg.Timer("core.node." + n.Kind.String()).Observe(run.wall)
		r.observeOp(n, run)
		return run
	}
	a, ok := r.adapters[n.Engine]
	if !ok {
		run.err = fmt.Errorf("%w: %q", ErrNoAdapter, n.Engine)
		return run
	}
	var (
		out  adapter.Value
		info adapter.ExecInfo
		err  error
	)
	if st != nil && st.node == n.ID {
		out, info, err = r.runStreamedNode(ctx, a, n, inputs, st)
	} else {
		out, info, err = a.Execute(ctx, n, inputs)
	}
	if err != nil {
		run.err = err
		return run
	}
	run.out = out
	run.info = info
	run.wall = time.Since(t0)
	run.bytesOut = valueBytes(out)
	run.rows = run.out.Rows()
	r.reg.Counter("core.rule_nodes").Add(info.RuleNodes)
	r.reg.Counter("core.nodes").Inc()
	r.reg.Timer("core.node." + n.Kind.String()).Observe(run.wall)
	r.observeOp(n, run)
	return run
}

// costNode charges a finished node's kernel calls to devices and schedules
// it on the simulated clock: the node starts once its inputs have finished
// (start) and each kernel waits for its device to free up in the ledger.
// Callers must cost nodes in a deterministic topological order — reservation
// order decides contention, and the reports are compared across executors.
func (r *Runtime) costNode(n *ir.Node, run *nodeRun, start float64, led *hw.Reservations) (NodeReport, error) {
	nr := NodeReport{Node: n.ID, Kind: n.Kind, Engine: n.Engine, Start: start, Wall: run.wall}
	if run.isMigrate {
		nr.Sim = run.bd.Sim
		nr.Device = "dm/" + migrate.Transport(n.IntAttr("transport")).String()
		nr.Native = fmt.Sprintf("Migrate(%s->%s, %s)", n.StringAttr("from"), n.StringAttr("to"), migrate.Transport(n.IntAttr("transport")))
		nr.RowsIn = int64(run.rows)
		nr.RowsOut = int64(run.rows)
		nr.Finish = start + run.bd.Sim.Seconds
		return nr, nil
	}
	nr.Native = run.info.Native
	nr.RowsIn = run.info.RowsIn
	nr.RowsOut = run.info.RowsOut

	// Cost the kernel calls, choosing devices at runtime (§IV-D-a: "IR
	// mapping to local accelerators ... will ultimately depend on runtime
	// environment and data-dependent analyses").
	clock := start
	devices := map[string]bool{}
	for _, call := range run.info.Kernels {
		dev, cost, err := r.chargeKernel(n, call)
		if err != nil {
			return nr, err
		}
		_, clock = led.Reserve(dev, clock, cost.Seconds)
		nr.Sim = nr.Sim.AddSeq(cost)
		devices[dev.Name] = true
	}
	names := make([]string, 0, len(devices))
	for d := range devices {
		names = append(names, d)
	}
	sort.Strings(names)
	nr.Device = strings.Join(names, "+")
	if nr.Device == "" {
		nr.Device = r.host.Name
	}
	nr.Finish = clock
	return nr, nil
}

// chargeKernel selects the device for one kernel call (honoring the node's
// Device annotation) and charges the cost to it. An empty annotation runs on
// the host; "auto" lets the runtime pick the cheapest device; any other name
// pins the call to that device, and naming a device the deployment does not
// have is an execution error rather than a silent host fallback.
func (r *Runtime) chargeKernel(n *ir.Node, call adapter.KernelCall) (*hw.Device, hw.Cost, error) {
	switch n.Device {
	case "", "auto":
		// Handled below.
	case r.host.Name:
		return r.hostCharge(call)
	default:
		for _, d := range r.accels {
			if d.Name != n.Device {
				continue
			}
			c, err := d.Offload(r.mode, call.Class, call.Work, call.OutBytes)
			if err != nil {
				return nil, hw.Zero, fmt.Errorf("pinned device %q: %w", n.Device, err)
			}
			r.reg.Counter("core.offloads." + d.Name).Inc()
			return d, c, nil
		}
		return nil, hw.Zero, fmt.Errorf("%w: %q (attached: %s)", ErrNoDevice, n.Device, strings.Join(r.deviceNames(), ", "))
	}
	if n.Device == "" || len(r.accels) == 0 {
		return r.hostCharge(call)
	}
	// Runtime device choice: estimate end-to-end cost on the host and on
	// every accelerator supporting the kernel, pick the cheapest, charge it.
	bestDev := r.host
	bestCost, err := r.host.KernelCost(call.Class, call.Work)
	if err != nil {
		bestCost = hw.Zero
	}
	// The comparison (not the charge) blends the static host estimate with
	// the observed wall EWMA of this (engine, op) once feedback is confident
	// — placement decisions track measured reality while simulated Reports
	// stay within the static cost model.
	bestSeconds := r.observedHostSeconds(n, bestCost.Seconds)
	offload := false
	for _, d := range r.accels {
		est, err := estimateOffload(d, r.mode, call)
		if err != nil {
			continue
		}
		if est.Seconds < bestSeconds {
			bestDev, bestCost, offload = d, est, true
			bestSeconds = est.Seconds
		}
	}
	if !offload {
		return r.hostCharge(call)
	}
	c, err := bestDev.Offload(r.mode, call.Class, call.Work, call.OutBytes)
	if err != nil {
		// Offload refused (e.g. area budget): run on the host instead.
		return r.hostCharge(call)
	}
	r.reg.Counter("core.offloads." + bestDev.Name).Inc()
	return bestDev, c, nil
}

// hostCharge costs a kernel call on the host CPU. Kernels the host cannot
// model are charged zero rather than failing the query.
func (r *Runtime) hostCharge(call adapter.KernelCall) (*hw.Device, hw.Cost, error) {
	c, err := r.host.HostCost(call.Class, call.Work)
	if err != nil {
		return r.host, hw.Zero, nil
	}
	return r.host, c, nil
}

// deviceNames lists the host plus attached accelerator names.
func (r *Runtime) deviceNames() []string {
	out := []string{r.host.Name}
	for _, d := range r.accels {
		out = append(out, d.Name)
	}
	return out
}

// estimateOffload predicts offload cost without mutating device state
// (reconfiguration is only counted if the kernel is not already loaded).
func estimateOffload(d *hw.Device, mode hw.Mode, call adapter.KernelCall) (hw.Cost, error) {
	kc, err := d.KernelCost(call.Class, call.Work)
	if err != nil {
		return hw.Zero, err
	}
	total := kc
	if (d.Kind == hw.FPGA || d.Kind == hw.CGRA) && !d.HasKernel(call.Class.String()) {
		total = total.AddSeq(hw.Cost{Seconds: d.ReconfigSeconds})
	}
	switch mode {
	case hw.Coprocessor:
		total = total.AddSeq(d.TransferCost(call.Work.Bytes)).AddSeq(d.TransferCost(call.OutBytes))
	case hw.BumpInTheWire:
		line := d.TransferCost(call.Work.Bytes)
		if line.Seconds > kc.Seconds {
			total = line
		}
	}
	return total, nil
}

// executeMigrate moves the single tabular input across engines.
func (r *Runtime) executeMigrate(ctx context.Context, n *ir.Node, inputs []adapter.Value) (*cast.Batch, migrate.Breakdown, error) {
	if len(inputs) != 1 || inputs[0].Batch == nil {
		return nil, migrate.Breakdown{}, fmt.Errorf("%w: migrate wants one tabular input", ErrExec)
	}
	tr := migrate.Transport(n.IntAttr("transport"))
	out, bd, err := r.migrator.Migrate(ctx, inputs[0].Batch, tr)
	if err != nil {
		return nil, bd, err
	}
	return out, bd, nil
}
