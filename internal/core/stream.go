package core

import (
	"context"

	"polystorepp/internal/adapter"
	"polystorepp/internal/cast"
	"polystorepp/internal/compiler"
	"polystorepp/internal/ir"
)

// ResultSink receives a plan's primary sink output incrementally while the
// plan is still executing — the partial-result delivery path the serving
// layer's NDJSON responses ride on. StartStream is called exactly once, with
// the sink node and its output schema, before the first batch (and even when
// the result is empty, so consumers always learn the schema); EmitBatch then
// delivers result batches in row order. The concatenation of the emitted
// batches equals the sink value in the Results that ExecuteStream returns —
// streaming changes delivery, never content. Batches may be zero-copy views
// of engine storage: sinks must not retain or mutate them past the call.
//
// Sink methods are invoked from a single goroutine (the one executing the
// sink node), but not necessarily the caller's. A sink error aborts the
// execution with that error.
type ResultSink interface {
	StartStream(node ir.NodeID, schema cast.Schema) error
	EmitBatch(node ir.NodeID, b *cast.Batch) error
}

// ExecuteStream runs the plan like Execute while streaming the first sink
// node's output batches to sink as the terminal operator produces them.
// Model-valued sinks stream nothing (there are no batches to deliver); the
// returned Results and Report are identical to Execute's, so callers cache
// and report streamed executions exactly like buffered ones. A nil sink
// degrades to Execute.
func (r *Runtime) ExecuteStream(ctx context.Context, plan *compiler.Plan, sink ResultSink) (*Results, *Report, error) {
	sinks := plan.Graph.Sinks()
	if sink == nil || len(sinks) == 0 {
		return r.Execute(ctx, plan)
	}
	st := &nodeStream{sink: sink, node: sinks[0]}
	r.reg.Counter("core.exec.streamed").Inc()
	if !r.sequential && planWidth(plan) > 1 {
		return r.executeConcurrent(ctx, plan, st)
	}
	return r.executeSequential(ctx, plan, st)
}

// nodeStream is the per-execution streaming state: which node streams, and
// whether the schema has been announced. It is touched only by the goroutine
// running the streamed node (one node, one worker), so it needs no lock.
type nodeStream struct {
	sink    ResultSink
	node    ir.NodeID
	started bool
}

// emit forwards one batch, announcing the schema first if needed. Empty
// batches still announce (a stream of zero rows has a schema) but are not
// delivered.
func (st *nodeStream) emit(b *cast.Batch) error {
	if !st.started {
		st.started = true
		if err := st.sink.StartStream(st.node, b.Schema()); err != nil {
			return err
		}
	}
	if b.Rows() == 0 {
		return nil
	}
	return st.sink.EmitBatch(st.node, b)
}

// finish announces the schema of an empty tabular result whose execution
// emitted no batches, so the stream always carries a schema when the
// buffered response would carry columns.
func (st *nodeStream) finish(out adapter.Value) error {
	if st.started || out.Batch == nil {
		return nil
	}
	st.started = true
	return st.sink.StartStream(st.node, out.Batch.Schema())
}

// runStreamedNode executes the streamed sink node: through the adapter's
// native streaming path when it has one, otherwise buffered with the result
// chunked through the sink — either way the emitted concatenation equals the
// returned value.
func (r *Runtime) runStreamedNode(ctx context.Context, a adapter.Adapter, n *ir.Node, inputs []adapter.Value, st *nodeStream) (adapter.Value, adapter.ExecInfo, error) {
	var (
		out  adapter.Value
		info adapter.ExecInfo
		err  error
	)
	if se, ok := a.(adapter.StreamExecutor); ok {
		out, info, err = se.ExecuteStream(ctx, n, inputs, st.emit)
	} else {
		out, info, err = a.Execute(ctx, n, inputs)
		if err == nil {
			err = adapter.EmitChunked(ctx, st.emit, out.Batch)
		}
	}
	if err == nil {
		err = st.finish(out)
	}
	return out, info, err
}
