package core

import (
	"polystorepp/internal/compiler"
	"polystorepp/internal/feedback"
	"polystorepp/internal/ir"
	"polystorepp/internal/optimizer"
	"polystorepp/internal/partition"
)

// Adaptive feedback integration: when a feedback store is installed
// (ConfigureFeedback), every executed plan node feeds its observed facts —
// cardinality, bytes, wall time, realized fan-out — into the store at the
// coordinator's costing point (deterministic topological order, single
// goroutine, subplan-cache replays excluded so memoized hits cannot
// pollute wall statistics). Two planning decisions read the store back:
//
//   - Partition sizing (prepareFeedback): a node with a pinned fan-out is
//     capped to what the observed input cardinality justifies, carried to
//     the adapter via partition.WithMaxParts on the node's context because
//     compiled plans are cached and shared — node attrs are immutable at
//     execution time. Results are byte-identical at any fan-out, so a bad
//     cap costs speed, never correctness.
//   - Placement costing (observedHostSeconds): the LogCA device choice in
//     chargeKernel blends the static host estimate with the observed wall
//     EWMA for the (engine, op) aggregate once its sample count clears the
//     confidence threshold. Only the host-vs-accelerator *decision* uses
//     the blend; the charged cost stays the static model's, so simulated
//     Reports remain within the cost model's vocabulary.

// feedbackState hangs the store off the Runtime behind an atomic pointer
// (the subplan-cache pattern) so the serving layer can enable, reconfigure
// or disable it while requests are in flight; an execution captures the
// state once at prepare time.
type feedbackState struct {
	store *feedback.Store
}

// WithAdaptiveFeedback enables the feedback store at construction with the
// given config (zero value selects the documented defaults).
func WithAdaptiveFeedback(cfg feedback.Config) Option {
	return func(r *Runtime) { r.fbCfg, r.fbOn = cfg, true }
}

// ConfigureFeedback installs a fresh feedback store (dropping accumulated
// statistics). Safe to call while plans execute: in-flight executions keep
// the state they captured.
func (r *Runtime) ConfigureFeedback(cfg feedback.Config) {
	r.fb.Store(&feedbackState{store: feedback.New(cfg)})
}

// DisableFeedback removes the feedback store; planning falls back to
// static cost models and pinned fan-outs run as pinned.
func (r *Runtime) DisableFeedback() { r.fb.Store(nil) }

// FeedbackStats is the structural snapshot /stats and /metrics expose
// (zero value when feedback is disabled).
type FeedbackStats struct {
	Enabled   bool
	Samples   int64
	Keys      int
	Evictions int64
	Epoch     int64
}

// FeedbackStats snapshots the feedback store.
func (r *Runtime) FeedbackStats() FeedbackStats {
	fs := r.fb.Load()
	if fs == nil {
		return FeedbackStats{}
	}
	st := fs.store.Stats()
	return FeedbackStats{Enabled: true, Samples: st.Samples, Keys: st.Keys,
		Evictions: st.Evictions, Epoch: st.Epoch}
}

// adaptiveKinds are the operator kinds whose pinned partition fan-out the
// feedback loop may cap — the same set whose execution honors a "parts"
// attribute.
var adaptiveKinds = map[ir.OpKind]bool{
	ir.OpFilter: true, ir.OpProject: true, ir.OpGroupBy: true,
	ir.OpHashJoin: true, ir.OpTSWindow: true,
}

// fbOverride is one node's adaptive fan-out decision: run at parts, not
// the pinned was.
type fbOverride struct{ parts, was int }

// fbExec is one execution's feedback state: the captured store, the plan's
// shape keys, and the fan-out overrides decided before any node runs. The
// override map is read-only during execution, so scheduler workers consult
// it without coordination; observation happens only on the coordinator
// goroutine. All methods tolerate a nil receiver — the disabled path costs
// one atomic load per plan.
type fbExec struct {
	store *feedback.Store
	fps   map[ir.NodeID]string
	over  map[ir.NodeID]fbOverride
}

// prepareFeedback captures the feedback store and decides, per node with a
// pinned fan-out, whether observed input cardinality justifies a smaller
// one. Returns nil when feedback is disabled.
func (r *Runtime) prepareFeedback(plan *compiler.Plan) *fbExec {
	fs := r.fb.Load()
	if fs == nil {
		return nil
	}
	fb := &fbExec{store: fs.store, fps: plan.NodeFPs}
	for _, n := range plan.Graph.Nodes() {
		if !adaptiveKinds[n.Kind] {
			continue
		}
		pinned := int(n.IntAttr("parts"))
		if pinned <= 1 {
			continue // automatic sizing already adapts to the live input
		}
		st, ok := fb.store.Confident(feedback.Key{
			Engine: opEngine(n), Op: n.Kind.String(), FP: fb.fps[n.ID],
		})
		if !ok {
			continue
		}
		advised := partition.Auto(int(st.RowsIn), partition.Shared())
		if advised >= pinned {
			continue // observation supports the pinned fan-out (or more)
		}
		if fb.over == nil {
			fb.over = make(map[ir.NodeID]fbOverride)
		}
		fb.over[n.ID] = fbOverride{parts: advised, was: pinned}
		r.reg.Counter("core.feedback.fanout_overrides").Inc()
	}
	if len(fb.over) > 0 {
		r.reg.Counter("core.feedback.plans_influenced").Inc()
	}
	return fb
}

// override returns the node's adaptive fan-out decision, if any.
func (fb *fbExec) override(id ir.NodeID) (fbOverride, bool) {
	if fb == nil {
		return fbOverride{}, false
	}
	o, ok := fb.over[id]
	return o, ok
}

// observe feeds one finished, costed node into the feedback store. Called
// by both executors at the coordinator's costing point — topological
// order, one goroutine — and never for subplan-cache replays (cached runs
// carry memoized wall times of zero).
func (fb *fbExec) observe(n *ir.Node, run *nodeRun) {
	if fb == nil || run.cached {
		return
	}
	fb.store.Observe(feedback.Key{
		Engine: opEngine(n), Op: n.Kind.String(), FP: fb.fps[n.ID],
	}, feedback.Obs{
		RowsIn:  run.rowsIn(),
		RowsOut: run.rowsOut(),
		Bytes:   run.bytesIn,
		Wall:    run.wall,
		Parts:   run.info.Parts,
	})
}

// observedHostSeconds blends a static host-cost estimate with the observed
// wall EWMA of the node's (engine, op) aggregate — the placement-costing
// half of the loop. Cold keys (or feedback off) return the static estimate
// unchanged.
func (r *Runtime) observedHostSeconds(n *ir.Node, static float64) float64 {
	fs := r.fb.Load()
	if fs == nil {
		return static
	}
	st, ok := fs.store.Confident(feedback.Key{Engine: opEngine(n), Op: n.Kind.String()})
	if !ok {
		return static
	}
	blended := optimizer.BlendedSeconds(static, st.WallSeconds,
		st.Samples, fs.store.Config().ConfidenceSamples)
	if blended != static {
		r.reg.Counter("core.feedback.blended_costs").Inc()
	}
	return blended
}
