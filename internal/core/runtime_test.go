package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"polystorepp/internal/adapter"
	"polystorepp/internal/cast"
	"polystorepp/internal/compiler"
	"polystorepp/internal/hw"
	"polystorepp/internal/ir"
	"polystorepp/internal/relational"
)

func testStore(t testing.TB, rows int) *relational.Store {
	t.Helper()
	s := relational.NewStore("db")
	schema := cast.MustSchema(
		cast.Column{Name: "id", Type: cast.Int64},
		cast.Column{Name: "v", Type: cast.Int64},
	)
	tb, err := s.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b := cast.NewBatch(schema, rows)
	for i := 0; i < rows; i++ {
		if err := b.AppendRow(int64(i), rng.Int63n(1000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.InsertBatch(b); err != nil {
		t.Fatal(err)
	}
	return s
}

func testRuntime(t testing.TB, rows int, accel bool) *Runtime {
	t.Helper()
	var opts []Option
	if accel {
		opts = append(opts, WithAccelerators(hw.Coprocessor, hw.NewFPGA(), hw.NewGPU()))
	}
	rt := NewRuntime(hw.NewHostCPU(), opts...)
	rt.Register(adapter.NewRelational("db", relational.NewEngine(testStore(t, rows))))
	rt.Register(adapter.NewML("ml", 1))
	return rt
}

func sortProgram() *ir.Graph {
	g := ir.NewGraph()
	scan := g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
	g.Add(ir.OpSort, "db", map[string]any{
		"order_by": []relational.OrderItem{{Col: "v"}},
	}, scan)
	return g
}

func TestExecuteSimplePlan(t *testing.T) {
	rt := testRuntime(t, 1000, false)
	plan, err := compiler.Compile(sortProgram(), compiler.Options{Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := rt.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	out := res.First().Batch
	if out == nil || out.Rows() != 1000 {
		t.Fatalf("rows = %v", out)
	}
	vs, _ := out.Ints(1)
	for i := 1; i < len(vs); i++ {
		if vs[i-1] > vs[i] {
			t.Fatal("not sorted")
		}
	}
	if rep.Latency <= 0 || len(rep.Nodes) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "sort") {
		t.Fatal("report render missing sort")
	}
}

func TestMissingAdapter(t *testing.T) {
	rt := testRuntime(t, 10, false)
	g := ir.NewGraph()
	g.Add(ir.OpScan, "ghost", map[string]any{"table": "t"})
	plan, err := compiler.Compile(g, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Execute(context.Background(), plan); !errors.Is(err, ErrNoAdapter) {
		t.Fatalf("missing adapter: %v", err)
	}
}

func TestOffloadCountsInMetrics(t *testing.T) {
	// Attach only the FPGA so the winning device is deterministic.
	rt := NewRuntime(hw.NewHostCPU(), WithAccelerators(hw.Coprocessor, hw.NewFPGA()))
	rt.Register(adapter.NewRelational("db", relational.NewEngine(testStore(t, 400_000))))
	plan, err := compiler.Compile(sortProgram(), compiler.Options{Level: 3, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if rt.Metrics().Counter("core.offloads.fpga-stratix").Value() == 0 {
		t.Fatalf("expected FPGA offloads; metrics:\n%s", rt.Metrics().Dump())
	}
}

func TestSmallWorkStaysOnHost(t *testing.T) {
	rt := testRuntime(t, 64, true)
	plan, err := compiler.Compile(sortProgram(), compiler.Options{Level: 3, Accel: true})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := rt.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Nodes {
		if n.Kind == ir.OpSort && n.Device != "cpu-server" {
			t.Fatalf("64-row sort offloaded to %s", n.Device)
		}
	}
}

func TestMigrationNodeExecution(t *testing.T) {
	rt := testRuntime(t, 2000, false)
	g := ir.NewGraph()
	scan := g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
	g.Add(ir.OpKMeans, "ml", map[string]any{
		"cols": []string{"v"}, "k": int64(2), "iters": int64(3),
	}, scan)
	plan, err := compiler.Compile(g, compiler.Options{Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := rt.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrations != 1 || rep.MigratedBytes <= 0 {
		t.Fatalf("migrations = %d (%d bytes)", rep.Migrations, rep.MigratedBytes)
	}
	if res.First().Batch == nil || res.First().Batch.Rows() != 2000 {
		t.Fatal("kmeans output wrong")
	}
}

func TestSimulatedSchedulingRespectsDependencies(t *testing.T) {
	rt := testRuntime(t, 5000, false)
	plan, err := compiler.Compile(sortProgram(), compiler.Options{Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := rt.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[ir.NodeID]NodeReport{}
	for _, n := range rep.Nodes {
		byID[n.Node] = n
	}
	for _, n := range plan.Graph.Nodes() {
		for _, in := range n.Inputs {
			if byID[n.ID].Start+1e-15 < byID[in].Finish {
				t.Fatalf("node %d started (%v) before input %d finished (%v)",
					n.ID, byID[n.ID].Start, in, byID[in].Finish)
			}
		}
	}
}

func TestExecuteHonorsContext(t *testing.T) {
	rt := testRuntime(t, 10, false)
	plan, err := compiler.Compile(sortProgram(), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := rt.Execute(ctx, plan); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled: %v", err)
	}
}

func TestResultsFirstEmpty(t *testing.T) {
	var res Results
	if res.First().Batch != nil {
		t.Fatal("empty Results.First should be zero")
	}
}
