package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polystorepp/internal/adapter"
	"polystorepp/internal/compiler"
	"polystorepp/internal/hw"
	"polystorepp/internal/ir"
	"polystorepp/internal/obs"
)

// Concurrent stage-aware DAG executor (§IV-D).
//
// The paper's middleware executes plan DAGs with device-level parallelism,
// and BigDAWG-style polystores dispatch independent sub-plans to their
// engines concurrently. This scheduler brings real wall-clock time in line
// with the parallelism the simulated clock already models:
//
//   - Dispatch: a node becomes ready when all its producers have run; ready
//     nodes go to a bounded worker queue per engine (migrations get the
//     middleware queue), so one slow engine cannot starve the others and no
//     engine is oversubscribed. The compiler's stage schedule seeds the
//     queues and the initial ready set.
//   - Real execution (runNode): adapter translation and native operators run
//     concurrently across queues — this is where host wall time is won.
//   - Simulated costing (costNode): applied by the coordinator in the exact
//     topological order the sequential executor uses, over one
//     hw.Reservations ledger. Reservation order decides device contention,
//     so serializing it keeps Reports identical to the sequential baseline
//     (modulo host wall times) no matter how real executions interleave.
//
// Errors surface at the earliest failing node in topological order — the
// same node the sequential executor stops at. Consumers of a failed node are
// never dispatched; the coordinator reaches the failure first (producers
// precede consumers in topological order) and tears the pools down.

// middlewareQueue is the dispatch queue for engine-less nodes (migrations).
const middlewareQueue = ""

// schedNode is the per-node scheduling state.
type schedNode struct {
	n *ir.Node
	// waits counts distinct producers that have not finished yet.
	waits atomic.Int32
	// run is the real-execution outcome; written by the worker that ran the
	// node before closing done.
	run *nodeRun
	// done closes when the real execution finished (run is set).
	done chan struct{}
	// enqueued is when the node entered its dispatch queue — stamped only for
	// traced executions (the happens-before of the queue send orders the
	// write before the worker's read), so untraced runs skip the clock reads.
	enqueued time.Time
}

// executeConcurrent runs the plan through the concurrent DAG scheduler.
// st, when non-nil, streams the designated sink node's batches (stream.go);
// only the single worker executing that node touches the sink, and the
// coordinator's cancel+wait teardown guarantees no emission outlives this
// call.
func (r *Runtime) executeConcurrent(ctx context.Context, plan *compiler.Plan, st *nodeStream) (*Results, *Report, error) {
	t0 := time.Now()
	g := plan.Graph
	order, err := g.TopoSort()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrExec, err)
	}
	r.reg.Counter("core.exec.concurrent").Inc()
	tr := obs.From(ctx)
	pr := r.prepareSubplan(ctx, plan)
	defer pr.close()
	fb := r.prepareFeedback(plan)

	// execCtx cancels every in-flight worker when the coordinator returns
	// early (error or caller cancellation).
	execCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	consumers := g.ConsumerIndex()
	nodes := make(map[ir.NodeID]*schedNode, len(order))
	for _, id := range order {
		n := g.MustNode(id)
		sn := &schedNode{n: n, done: make(chan struct{})}
		producers := make(map[ir.NodeID]bool, len(n.Inputs))
		for _, in := range n.Inputs {
			producers[in] = true
		}
		sn.waits.Store(int32(len(producers)))
		nodes[id] = sn
	}

	sched := &scheduler{
		rt:        r,
		nodes:     nodes,
		consumers: consumers,
		queues:    make(map[string]chan *schedNode),
		st:        st,
		tr:        tr,
		pr:        pr,
		fb:        fb,
	}
	// Create every queue before any dispatch (workers never mutate the map),
	// each sized to the nodes it will ever receive so dispatching never
	// blocks, with workers capped likewise — a queue holding two nodes
	// never needs more than two goroutines.
	queueNodes := make(map[string]int, 4)
	for _, id := range order {
		queueNodes[queueKey(nodes[id].n)]++
	}
	var wg sync.WaitGroup
	for _, id := range order {
		key := queueKey(nodes[id].n)
		if _, ok := sched.queues[key]; ok {
			continue
		}
		q := make(chan *schedNode, queueNodes[key])
		sched.queues[key] = q
		workers := r.engineWorkers
		if n := queueNodes[key]; n < workers {
			workers = n
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-execCtx.Done():
						return
					case sn := <-q:
						sched.runScheduled(execCtx, sn)
					}
				}
			}()
		}
	}
	// Seed the ready set in stage order — the compiler's schedule makes the
	// initial dispatch deterministic. Seed on the immutable "has no
	// producers" condition, NOT the live waits counter: workers are already
	// decrementing waits for downstream nodes, and reading 0 here would
	// dispatch such a node a second time.
	for _, stage := range plan.Stages {
		for _, id := range stage {
			if sn := nodes[id]; len(sn.n.Inputs) == 0 {
				if tr != nil {
					sn.enqueued = time.Now()
				}
				sched.queues[queueKey(sn.n)] <- sn
			}
		}
	}

	// Coordinator: cost finished nodes in sequential topological order.
	values := make(map[ir.NodeID]adapter.Value, len(order))
	finish := make(map[ir.NodeID]float64, len(order))
	led := hw.NewReservations()
	rep := &Report{}
	var execErr error
	for _, id := range order {
		sn := nodes[id]
		select {
		case <-sn.done:
		case <-ctx.Done():
			execErr = ctx.Err()
		}
		if execErr != nil {
			break
		}
		if sn.run.err != nil {
			execErr = fmt.Errorf("%w: node %d (%s): %w", ErrExec, id, sn.n.Kind, sn.run.err)
			break
		}
		start := 0.0
		for _, in := range sn.n.Inputs {
			if finish[in] > start {
				start = finish[in]
			}
		}
		nr, err := r.costNode(sn.n, sn.run, start, led)
		if err != nil {
			execErr = fmt.Errorf("%w: node %d (%s): %w", ErrExec, id, sn.n.Kind, err)
			break
		}
		if tr != nil {
			tr.AddSpan(nodeSpan(tr, sn.n, sn.run, nr))
		}
		values[id] = sn.run.out
		finish[id] = nr.Finish
		rep.absorb(nr, sn.run)
		pr.onNodeCosted(id, sn.run)
		fb.observe(sn.n, sn.run)
	}

	// Tear down the pools; in-flight adapter calls observe the cancellation.
	cancel()
	wg.Wait()
	if execErr != nil {
		// Pure cancellation surfaces as the bare context error, matching the
		// sequential path.
		if ctxErr := ctx.Err(); ctxErr != nil && execErr == ctxErr {
			return nil, nil, ctxErr
		}
		return nil, nil, execErr
	}
	r.reg.Gauge("core.exec.max_parallel").SetMax(float64(sched.maxInflight.Load()))
	rep.finalize(t0, g, finish)
	return &Results{Values: values, Sinks: g.Sinks()}, rep, nil
}

// queueKey maps a node to its dispatch queue: its engine, or the middleware
// queue for migrations.
func queueKey(n *ir.Node) string {
	if n.Kind == ir.OpMigrate {
		return middlewareQueue
	}
	return n.Engine
}

// scheduler is the shared dispatch state of one executeConcurrent call.
type scheduler struct {
	rt        *Runtime
	nodes     map[ir.NodeID]*schedNode
	consumers map[ir.NodeID][]ir.NodeID
	queues    map[string]chan *schedNode
	// st streams the designated sink node's output; nil for buffered runs.
	st *nodeStream
	// tr is the request's trace (nil when untraced); workers use it to decide
	// whether queue-wait stamping is worth the clock reads.
	tr *obs.Trace
	// pr is the execution's subplan-cache probe (nil when inactive); its
	// decision maps are read-only during execution, so workers consult it
	// without coordination.
	pr *planProbe
	// fb is the execution's feedback state (nil when disabled); the override
	// map is read-only during execution, so workers consult it without
	// coordination, and only the coordinator feeds observations back.
	fb *fbExec

	inflight    atomic.Int32
	maxInflight atomic.Int32
}

// runScheduled executes one dispatched node and releases its consumers.
func (s *scheduler) runScheduled(ctx context.Context, sn *schedNode) {
	cur := s.inflight.Add(1)
	for {
		m := s.maxInflight.Load()
		if cur <= m || s.maxInflight.CompareAndSwap(m, cur) {
			break
		}
	}
	defer s.inflight.Add(-1)

	if err := ctx.Err(); err != nil {
		sn.run = &nodeRun{err: err}
		close(sn.done)
		return
	}
	var queued time.Duration
	if s.tr != nil && !sn.enqueued.IsZero() {
		queued = time.Since(sn.enqueued)
	}
	inputs := make([]adapter.Value, len(sn.n.Inputs))
	for i, in := range sn.n.Inputs {
		// Producers finished before this node was dispatched; the queue
		// send/receive and the waits counter order these reads after their
		// writes.
		inputs[i] = s.nodes[in].run.out
	}
	sn.run = s.rt.runNode(ctx, sn.n, inputs, s.st, s.pr, s.fb)
	sn.run.queue = queued
	close(sn.done)
	if sn.run.err != nil {
		return // consumers stay undispatched; the coordinator stops first
	}
	for _, c := range s.consumers[sn.n.ID] {
		cn := s.nodes[c]
		if cn.waits.Add(-1) == 0 {
			if s.tr != nil {
				cn.enqueued = time.Now()
			}
			// Buffered to the full plan; never blocks.
			s.queues[queueKey(cn.n)] <- cn
		}
	}
}
