package core

import (
	"polystorepp/internal/adapter"
	"polystorepp/internal/ir"
	"polystorepp/internal/obs"
)

// Trace and OpStats wiring for both executors. The executors fetch the
// request's trace from the context once per plan (obs.From), so an untraced
// execution pays one context lookup total — the nil-trace fast path the
// serving benchmark pins.

// opEngine labels a node for the per-operator stats registry and trace
// spans: its engine, or "middleware" for engine-less migration nodes.
func opEngine(n *ir.Node) string {
	if n.Kind == ir.OpMigrate {
		return "middleware"
	}
	return n.Engine
}

// valueBytes approximates a dataflow value's payload size (0 for models —
// bytes track tabular volume, which is what migration and kernel costing
// already account in).
func valueBytes(v adapter.Value) int64 {
	if v.Batch == nil {
		return 0
	}
	return v.Batch.ByteSize()
}

// observeOp folds one finished node execution into the always-on
// per-(engine, op-kind) registry.
func (r *Runtime) observeOp(n *ir.Node, run *nodeRun) {
	r.ops.Observe(opEngine(n), n.Kind.String(), obs.Obs{
		Wall:     run.wall,
		RowsIn:   run.rowsIn(),
		RowsOut:  run.rowsOut(),
		BytesIn:  run.bytesIn,
		BytesOut: run.bytesOut,
		Parts:    run.info.Parts,
	})
}

// rowsIn returns the node's input cardinality (migrations pass rows
// through unchanged).
func (run *nodeRun) rowsIn() int64 {
	if run.isMigrate {
		return int64(run.rows)
	}
	return run.info.RowsIn
}

// rowsOut returns the node's output cardinality.
func (run *nodeRun) rowsOut() int64 {
	if run.isMigrate {
		return int64(run.rows)
	}
	return run.info.RowsOut
}

// nodeSpan renders one costed node execution as a trace span. Callers hold
// the costed NodeReport, so device/native labels match the execution report
// exactly.
func nodeSpan(tr *obs.Trace, n *ir.Node, run *nodeRun, nr NodeReport) obs.Span {
	s := obs.Span{
		Node:     int64(n.ID),
		Kind:     n.Kind.String(),
		Engine:   opEngine(n),
		Device:   nr.Device,
		Native:   nr.Native,
		QueueUS:  run.queue.Microseconds(),
		RunUS:    run.wall.Microseconds(),
		RowsIn:   nr.RowsIn,
		RowsOut:  nr.RowsOut,
		BytesIn:  run.bytesIn,
		BytesOut: run.bytesOut,
		Parts:    run.info.Parts,
		Cached:   run.cached,
	}
	if run.adaptParts > 0 {
		s.Adaptive = &obs.AdaptiveNote{Fanout: run.adaptParts, Was: run.adaptWas}
	}
	if !run.hostStart.IsZero() {
		s.StartUS = run.hostStart.Sub(tr.Start()).Microseconds()
	}
	if len(n.Inputs) > 0 {
		s.Inputs = make([]int64, len(n.Inputs))
		for i, in := range n.Inputs {
			s.Inputs[i] = int64(in)
		}
	}
	return s
}
