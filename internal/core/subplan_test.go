package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"polystorepp/internal/adapter"
	"polystorepp/internal/cast"
	"polystorepp/internal/compiler"
	"polystorepp/internal/hw"
	"polystorepp/internal/ir"
	"polystorepp/internal/relational"
)

// branchProgram builds `width` independent scan -> filter -> sort chains
// (each with a private scan, so every chain is a closed subtree) — wide
// enough to engage the concurrent scheduler while keeping candidates.
func branchProgram(width int) *ir.Graph {
	g := ir.NewGraph()
	for i := 0; i < width; i++ {
		scan := g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
		f := g.Add(ir.OpFilter, "db", map[string]any{"pred": relational.Bin{
			Op: relational.OpGt, L: relational.ColRef{Name: "v"}, R: relational.Const{V: int64(i * 50)},
		}}, scan)
		g.Add(ir.OpSort, "db", map[string]any{
			"order_by": []relational.OrderItem{{Col: "v"}, {Col: "id"}},
		}, f)
	}
	return g
}

// limitProgram is a scan -> filter -> sort -> limit chain; the limit attr
// varies across the family while the prefix subtree stays shared.
func limitProgram(limit int64) *ir.Graph {
	g := ir.NewGraph()
	scan := g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
	f := g.Add(ir.OpFilter, "db", map[string]any{"pred": relational.Bin{
		Op: relational.OpGt, L: relational.ColRef{Name: "v"}, R: relational.Const{V: int64(100)},
	}}, scan)
	s := g.Add(ir.OpSort, "db", map[string]any{
		"order_by": []relational.OrderItem{{Col: "v"}, {Col: "id"}},
	}, f)
	g.Add(ir.OpLimit, "db", map[string]any{"n": limit}, s)
	return g
}

func mustCompile(t *testing.T, g *ir.Graph, level int) *compiler.Plan {
	t.Helper()
	plan, err := compiler.Compile(g, compiler.Options{Level: level})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// batchesEqual requires byte-identical sink payloads, not just row counts.
func batchesEqual(t *testing.T, got, want *Results) {
	t.Helper()
	resultsEqual(t, got, want)
	for _, s := range want.Sinks {
		g, w := got.Values[s].Batch, want.Values[s].Batch
		if (g == nil) != (w == nil) {
			t.Fatalf("sink %d: batch presence mismatch", s)
		}
		if g != nil && !g.Equal(w) {
			t.Fatalf("sink %d: batch content mismatch", s)
		}
	}
}

// TestSubplanWarmEqualsCold is the tentpole equivalence guarantee at the
// core layer: with the subplan cache on, a warm execution returns the same
// batches and the same Report (host wall excluded) as the cold one and as a
// cache-disabled runtime, on both executors.
func TestSubplanWarmEqualsCold(t *testing.T) {
	cases := []struct {
		name  string
		graph func() *ir.Graph
		level int
	}{
		{"chain", func() *ir.Graph { return limitProgram(50) }, 3},
		{"fanout", func() *ir.Graph { return branchProgram(8) }, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := mustCompile(t, tc.graph(), tc.level)
			if len(plan.Subtrees) == 0 {
				t.Fatal("plan has no subplan candidates")
			}

			off := testRuntime(t, 2000, true)
			off.ConfigureSubplanCache(-1)
			wantRes, wantRep, err := off.Execute(context.Background(), plan)
			if err != nil {
				t.Fatal(err)
			}

			on := testRuntime(t, 2000, true)
			coldRes, coldRep, err := on.Execute(context.Background(), plan)
			if err != nil {
				t.Fatal(err)
			}
			batchesEqual(t, coldRes, wantRes)
			reportsEqual(t, coldRep, wantRep)
			if on.Metrics().Counter("core.subplan.published").Value() == 0 {
				t.Fatal("cold run published nothing")
			}

			warmRes, warmRep, err := on.Execute(context.Background(), plan)
			if err != nil {
				t.Fatal(err)
			}
			batchesEqual(t, warmRes, wantRes)
			reportsEqual(t, warmRep, wantRep)
			if on.Metrics().Counter("core.subplan.hits").Value() == 0 {
				t.Fatal("warm run hit nothing")
			}
			if on.Metrics().Counter("core.subplan.plans_reused").Value() == 0 {
				t.Fatal("warm run not counted as reused")
			}
		})
	}
}

// TestSubplanSharedPrefixAcrossPlans: near-identical queries (same prefix,
// different limit) reuse the prefix subtree — the second plan's sort subtree
// is served from the first plan's publication.
func TestSubplanSharedPrefixAcrossPlans(t *testing.T) {
	rt := testRuntime(t, 2000, false)
	if _, _, err := rt.Execute(context.Background(), mustCompile(t, limitProgram(10), 3)); err != nil {
		t.Fatal(err)
	}
	hits0 := rt.Metrics().Counter("core.subplan.hits").Value()

	// Different limit: whole-plan key differs, prefix key matches.
	res, _, err := rt.Execute(context.Background(), mustCompile(t, limitProgram(25), 3))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Metrics().Counter("core.subplan.hits").Value() <= hits0 {
		t.Fatal("limit variant did not hit the shared prefix subtree")
	}
	if got := res.First().Batch.Rows(); got != 25 {
		t.Fatalf("variant rows = %d, want 25", got)
	}

	// Equivalence of the served variant against a cache-disabled runtime.
	off := testRuntime(t, 2000, false)
	off.ConfigureSubplanCache(-1)
	wantRes, wantRep, err := off.Execute(context.Background(), mustCompile(t, limitProgram(25), 3))
	if err != nil {
		t.Fatal(err)
	}
	batchesEqual(t, res, wantRes)
	_, rep2, err := rt.Execute(context.Background(), mustCompile(t, limitProgram(25), 3))
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, rep2, wantRep)
}

// TestSubplanStreamWarmReplay: a warm hit on the streamed sink replays the
// memoized batch through the ResultSink; rows and report match a cold
// stream on a cache-disabled runtime.
func TestSubplanStreamWarmReplay(t *testing.T) {
	plan := mustCompile(t, limitProgram(500), 3)

	off := testRuntime(t, 2000, false)
	off.ConfigureSubplanCache(-1)
	wantSink := &collectSink{}
	wantRes, wantRep, err := off.ExecuteStream(context.Background(), plan, wantSink)
	if err != nil {
		t.Fatal(err)
	}

	on := testRuntime(t, 2000, false)
	coldSink := &collectSink{}
	if _, _, err := on.ExecuteStream(context.Background(), plan, coldSink); err != nil {
		t.Fatal(err)
	}
	warmSink := &collectSink{}
	warmRes, warmRep, err := on.ExecuteStream(context.Background(), plan, warmSink)
	if err != nil {
		t.Fatal(err)
	}
	if on.Metrics().Counter("core.subplan.hits").Value() == 0 {
		t.Fatal("warm stream hit nothing")
	}
	if !warmSink.started || warmSink.starts != 1 {
		t.Fatalf("warm sink starts = %d", warmSink.starts)
	}
	if !warmSink.concat(t).Equal(wantSink.concat(t)) {
		t.Fatal("warm streamed payload differs from cache-off stream")
	}
	if !coldSink.concat(t).Equal(wantSink.concat(t)) {
		t.Fatal("cold streamed payload differs from cache-off stream")
	}
	batchesEqual(t, warmRes, wantRes)
	reportsEqual(t, warmRep, wantRep)
}

// TestSubplanInvalidationOnWrite: a write to a touched table rotates the
// version vector, so warm keys stop being addressable and the next run sees
// the new data.
func TestSubplanInvalidationOnWrite(t *testing.T) {
	store := testStore(t, 1000)
	rt := NewRuntime(hw.NewHostCPU())
	rt.Register(adapter.NewRelational("db", relational.NewEngine(store)))
	rt.Register(adapter.NewML("ml", 1))

	plan := mustCompile(t, limitProgram(100000), 3)
	res1, _, err := rt.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	rows1 := res1.First().Batch.Rows()

	tb, err := store.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(int64(10_000), int64(999)); err != nil { // passes v > 100
		t.Fatal(err)
	}

	res2, _, err := rt.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.First().Batch.Rows(); got != rows1+1 {
		t.Fatalf("post-write rows = %d, want %d (stale subplan served?)", got, rows1+1)
	}
}

// TestSubplanUntouchedWriteKeepsHits: writes to a store the subtree never
// reads leave its memoized entries addressable (surgical invalidation).
func TestSubplanUntouchedWriteKeepsHits(t *testing.T) {
	touched := testStore(t, 500)
	other := relational.NewStore("db2")
	rt := NewRuntime(hw.NewHostCPU())
	rt.Register(adapter.NewRelational("db", relational.NewEngine(touched)))
	rt.Register(adapter.NewRelational("db2", relational.NewEngine(other)))

	plan := mustCompile(t, limitProgram(100000), 3)
	if _, _, err := rt.Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}

	// Mutate the untouched store (a new table counts as a write).
	schema := cast.MustSchema(cast.Column{Name: "id", Type: cast.Int64})
	if _, err := other.CreateTable("u", schema); err != nil {
		t.Fatal(err)
	}

	hits0 := rt.Metrics().Counter("core.subplan.hits").Value()
	if _, _, err := rt.Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if rt.Metrics().Counter("core.subplan.hits").Value() <= hits0 {
		t.Fatal("write to an untouched store invalidated the subplan entry")
	}
}

// TestSubplanMidFlightWriteSkipsPublish drives the probe/publish protocol
// by hand: a write landing between prepare and publication must suppress
// the publication (the batch belongs to neither version).
func TestSubplanMidFlightWriteSkipsPublish(t *testing.T) {
	store := testStore(t, 500)
	rt := NewRuntime(hw.NewHostCPU())
	rt.Register(adapter.NewRelational("db", relational.NewEngine(store)))

	plan := mustCompile(t, limitProgram(100000), 3)
	ctx := context.Background()
	pr := rt.prepareSubplan(ctx, plan)
	if pr == nil || len(pr.pubs) == 0 {
		t.Fatalf("probe = %+v, want pending publications", pr)
	}
	defer pr.close()

	// The plan is mid-flight; a concurrent ingest lands.
	tb, err := store.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(int64(10_000), int64(999)); err != nil {
		t.Fatal(err)
	}

	order, err := plan.Graph.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	values := make(map[ir.NodeID]adapter.Value)
	for _, id := range order {
		n := plan.Graph.MustNode(id)
		inputs := make([]adapter.Value, len(n.Inputs))
		for i, in := range n.Inputs {
			inputs[i] = values[in]
		}
		run := rt.runNode(ctx, n, inputs, nil, pr, nil)
		if run.err != nil {
			t.Fatal(run.err)
		}
		values[id] = run.out
		pr.onNodeCosted(id, run)
	}
	if got := rt.Metrics().Counter("core.subplan.stale_skips").Value(); got == 0 {
		t.Fatal("mid-flight write did not suppress publication")
	}
	if got := rt.Metrics().Counter("core.subplan.published").Value(); got != 0 {
		t.Fatalf("published %d entries despite mid-flight write", got)
	}
	if s := rt.SubplanCacheStats(); s.Entries != 0 {
		t.Fatalf("cache holds %d entries after suppressed publish", s.Entries)
	}
}

// TestSubplanSingleFlightConcurrent hammers one cold runtime with the same
// plan from many goroutines (run under -race): every execution must return
// equal batches and the baseline report, and the flight protocol must not
// deadlock or double-publish per key generation.
func TestSubplanSingleFlightConcurrent(t *testing.T) {
	plan := mustCompile(t, limitProgram(100000), 3)
	base := testRuntime(t, 2000, false)
	base.ConfigureSubplanCache(-1)
	wantRes, wantRep, err := base.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	rt := testRuntime(t, 2000, false)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	ress := make([]*Results, goroutines)
	reps := make([]*Report, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ress[i], reps[i], errs[i] = rt.Execute(context.Background(), plan)
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		batchesEqual(t, ress[i], wantRes)
		reportsEqual(t, reps[i], wantRep)
	}
	reg := rt.Metrics()
	probed := reg.Counter("core.subplan.plans_probed").Value()
	if probed != goroutines {
		t.Fatalf("plans probed = %d, want %d", probed, goroutines)
	}
}

// TestSubplanPropertyRandomPlans: randomized chain/fan-out plan families
// must satisfy warm == cold == disabled, buffered and streamed, across the
// family's attr variations.
func TestSubplanPropertyRandomPlans(t *testing.T) {
	preds := []int64{0, 100, 500}
	limits := []int64{3, 77, 100000}
	for _, p := range preds {
		for _, l := range limits {
			p, l := p, l
			t.Run(fmt.Sprintf("pred%d_limit%d", p, l), func(t *testing.T) {
				g := func() *ir.Graph {
					g := ir.NewGraph()
					scan := g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
					f := g.Add(ir.OpFilter, "db", map[string]any{"pred": relational.Bin{
						Op: relational.OpGt, L: relational.ColRef{Name: "v"}, R: relational.Const{V: p},
					}}, scan)
					s := g.Add(ir.OpSort, "db", map[string]any{
						"order_by": []relational.OrderItem{{Col: "v"}, {Col: "id"}},
					}, f)
					g.Add(ir.OpLimit, "db", map[string]any{"n": l}, s)
					return g
				}
				plan := mustCompile(t, g(), 3)
				off := testRuntime(t, 1200, false)
				off.ConfigureSubplanCache(-1)
				wantRes, wantRep, err := off.Execute(context.Background(), plan)
				if err != nil {
					t.Fatal(err)
				}
				on := testRuntime(t, 1200, false)
				for round := 0; round < 3; round++ {
					res, rep, err := on.Execute(context.Background(), plan)
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					batchesEqual(t, res, wantRes)
					reportsEqual(t, rep, wantRep)
				}
				sink := &collectSink{}
				sres, _, err := on.ExecuteStream(context.Background(), plan, sink)
				if err != nil {
					t.Fatal(err)
				}
				batchesEqual(t, sres, wantRes)
				if sink.rows != wantRes.First().Batch.Rows() {
					t.Fatalf("streamed %d rows, want %d", sink.rows, wantRes.First().Batch.Rows())
				}
			})
		}
	}
}
