package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"polystorepp/internal/cast"
	"polystorepp/internal/compiler"
	"polystorepp/internal/ir"
	"polystorepp/internal/relational"
)

// collectSink records everything a streamed execution delivers.
type collectSink struct {
	node     ir.NodeID
	schema   cast.Schema
	started  bool
	starts   int
	batches  []*cast.Batch
	rows     int
	batchErr error // returned from EmitBatch when set
}

func (c *collectSink) StartStream(node ir.NodeID, schema cast.Schema) error {
	c.node, c.schema, c.started = node, schema, true
	c.starts++
	return nil
}

func (c *collectSink) EmitBatch(_ ir.NodeID, b *cast.Batch) error {
	if c.batchErr != nil {
		return c.batchErr
	}
	c.batches = append(c.batches, b.Clone()) // batches may be storage views
	c.rows += b.Rows()
	return nil
}

// concat glues the collected batches back together.
func (c *collectSink) concat(t *testing.T) *cast.Batch {
	t.Helper()
	out := cast.NewBatch(c.schema, c.rows)
	for _, b := range c.batches {
		if err := out.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestExecuteStreamEqualsExecute pins the tentpole invariant across every
// relational terminal kind the streaming path special-cases: the streamed
// batch concatenation equals the buffered result, and Results/Report match.
func TestExecuteStreamEqualsExecute(t *testing.T) {
	pred := relational.Bin{Op: relational.OpGt, L: relational.ColRef{Name: "v"}, R: relational.Const{V: int64(300)}}
	progs := map[string]func() *ir.Graph{
		"scan": func() *ir.Graph {
			g := ir.NewGraph()
			g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
			return g
		},
		"filter": func() *ir.Graph {
			g := ir.NewGraph()
			scan := g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
			g.Add(ir.OpFilter, "db", map[string]any{"pred": pred}, scan)
			return g
		},
		"project": func() *ir.Graph {
			g := ir.NewGraph()
			scan := g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
			g.Add(ir.OpProject, "db", map[string]any{"items": []relational.ProjItem{
				{E: relational.ColRef{Name: "id"}, Name: "id"},
				{E: relational.Bin{Op: relational.OpMul, L: relational.ColRef{Name: "v"}, R: relational.Const{V: int64(2)}}, Name: "v2"},
			}}, scan)
			return g
		},
		"join": func() *ir.Graph {
			g := ir.NewGraph()
			l := g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
			r := g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
			// Rename the build side so the self-join's output schema has no
			// duplicate columns.
			rp := g.Add(ir.OpProject, "db", map[string]any{"items": []relational.ProjItem{
				{E: relational.ColRef{Name: "id"}, Name: "rid"},
				{E: relational.ColRef{Name: "v"}, Name: "rv"},
			}}, r)
			g.Add(ir.OpHashJoin, "db", map[string]any{"left_col": "v", "right_col": "rv"}, l, rp)
			return g
		},
		"sort": sortProgram,
		"wide": func() *ir.Graph { return fanoutProgram(4) },
	}
	for name, build := range progs {
		t.Run(name, func(t *testing.T) {
			rt := testRuntime(t, 5000, false)
			plan, err := compiler.Compile(build(), compiler.Options{Level: 1})
			if err != nil {
				t.Fatal(err)
			}
			res, rep, err := rt.Execute(context.Background(), plan)
			if err != nil {
				t.Fatal(err)
			}
			sink := &collectSink{}
			sres, srep, err := rt.ExecuteStream(context.Background(), plan, sink)
			if err != nil {
				t.Fatal(err)
			}
			want := res.First().Batch
			if got := sres.First().Batch; !got.Equal(want) {
				t.Fatal("streamed Results differ from buffered Results")
			}
			if !sink.started {
				t.Fatal("sink never started")
			}
			if sink.starts != 1 {
				t.Fatalf("StartStream called %d times", sink.starts)
			}
			if sink.node != plan.Graph.Sinks()[0] {
				t.Fatalf("streamed node %d, want first sink %d", sink.node, plan.Graph.Sinks()[0])
			}
			if !sink.schema.Equal(want.Schema()) {
				t.Fatalf("schema = %s, want %s", sink.schema, want.Schema())
			}
			if got := sink.concat(t); !got.Equal(want) {
				t.Fatalf("streamed concatenation (%d rows) differs from buffered result (%d rows)", got.Rows(), want.Rows())
			}
			if srep.Latency != rep.Latency || srep.Energy != rep.Energy || len(srep.Nodes) != len(rep.Nodes) {
				t.Fatalf("streamed report differs: latency %v vs %v, energy %v vs %v, nodes %d vs %d",
					srep.Latency, rep.Latency, srep.Energy, rep.Energy, len(srep.Nodes), len(rep.Nodes))
			}
		})
	}
}

// TestExecuteStreamEmptyResultAnnouncesSchema: a query with zero output rows
// still announces its schema (the NDJSON stream must carry a schema line
// whenever the buffered response would carry columns).
func TestExecuteStreamEmptyResultAnnouncesSchema(t *testing.T) {
	rt := testRuntime(t, 100, false)
	g := ir.NewGraph()
	scan := g.Add(ir.OpScan, "db", map[string]any{"table": "t"})
	pred := relational.Bin{Op: relational.OpGt, L: relational.ColRef{Name: "v"}, R: relational.Const{V: int64(1 << 40)}}
	g.Add(ir.OpFilter, "db", map[string]any{"pred": pred}, scan)
	plan, err := compiler.Compile(g, compiler.Options{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	res, _, err := rt.ExecuteStream(context.Background(), plan, sink)
	if err != nil {
		t.Fatal(err)
	}
	if res.First().Batch.Rows() != 0 {
		t.Fatal("expected empty result")
	}
	if !sink.started || len(sink.batches) != 0 {
		t.Fatalf("empty result: started=%v batches=%d, want schema-only stream", sink.started, len(sink.batches))
	}
	if !sink.schema.Has("v") {
		t.Fatalf("announced schema = %s", sink.schema)
	}
}

// TestExecuteStreamSinkErrorAborts: a failing sink (client gone) kills the
// execution with its error instead of silently completing.
func TestExecuteStreamSinkErrorAborts(t *testing.T) {
	rt := testRuntime(t, 5000, false)
	plan, err := compiler.Compile(sortProgram(), compiler.Options{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("client hung up")
	sink := &collectSink{batchErr: boom}
	if _, _, err := rt.ExecuteStream(context.Background(), plan, sink); !errors.Is(err, boom) {
		t.Fatalf("sink error not propagated: %v", err)
	}
}

// TestExecuteStreamNilSinkIsExecute: a nil sink degrades to the buffered
// path without panicking.
func TestExecuteStreamNilSinkIsExecute(t *testing.T) {
	rt := testRuntime(t, 500, false)
	plan, err := compiler.Compile(sortProgram(), compiler.Options{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := rt.ExecuteStream(context.Background(), plan, nil)
	if err != nil || res.First().Batch.Rows() != 500 {
		t.Fatalf("nil sink: res=%v err=%v", res, err)
	}
}
