package resilience

import (
	"sync"
	"testing"
	"time"
)

func testBreaker() *Breaker {
	return NewBreaker(BreakerConfig{
		Window:         time.Second,
		Buckets:        10,
		MinSamples:     10,
		FailureRatio:   0.5,
		Cooldown:       time.Second,
		HalfOpenProbes: 2,
	})
}

func TestBreakerOpensOnFailureRate(t *testing.T) {
	b := testBreaker()
	now := time.Now()
	// 5 successes + 4 failures: 9 samples, under MinSamples — stays closed.
	for i := 0; i < 5; i++ {
		b.Record(now, true)
	}
	for i := 0; i < 4; i++ {
		b.Record(now, false)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v before MinSamples, want closed", b.State())
	}
	// Tenth sample is a failure: 5/10 >= 0.5 — trips.
	b.Record(now, false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	ok, retry := b.Allow(now)
	if ok {
		t.Fatal("open breaker admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v", retry)
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d", b.Opens())
	}
}

func TestBreakerSuccessesKeepItClosed(t *testing.T) {
	b := testBreaker()
	now := time.Now()
	for i := 0; i < 100; i++ {
		b.Record(now.Add(time.Duration(i)*10*time.Millisecond), i%10 == 0) // 90% failures but...
	}
	// ...90% failure rate must open it, of course.
	if b.State() != Open {
		t.Fatal("heavy failures did not open breaker")
	}
	b2 := testBreaker()
	for i := 0; i < 100; i++ {
		b2.Record(now.Add(time.Duration(i)*10*time.Millisecond), i%10 != 0) // 10% failures
	}
	if b2.State() != Closed {
		t.Fatal("10% failure rate opened breaker")
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b := testBreaker()
	now := time.Now()
	for i := 0; i < 10; i++ {
		b.Record(now, false)
	}
	if b.State() != Open {
		t.Fatal("not open")
	}
	// Cooldown elapses: probes admitted, bounded by HalfOpenProbes.
	later := now.Add(1100 * time.Millisecond)
	if ok, _ := b.Allow(later); !ok {
		t.Fatal("probe 1 rejected after cooldown")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if ok, _ := b.Allow(later); !ok {
		t.Fatal("probe 2 rejected")
	}
	if ok, _ := b.Allow(later); ok {
		t.Fatal("third concurrent probe admitted beyond HalfOpenProbes=2")
	}
	// Both probes succeed: closed again, clean window.
	b.Record(later, true)
	b.Record(later, true)
	if b.State() != Closed {
		t.Fatalf("state = %v after recovery, want closed", b.State())
	}
	if ok, _ := b.Allow(later); !ok {
		t.Fatal("closed breaker rejected")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := testBreaker()
	now := time.Now()
	for i := 0; i < 10; i++ {
		b.Record(now, false)
	}
	later := now.Add(1100 * time.Millisecond)
	if ok, _ := b.Allow(later); !ok {
		t.Fatal("probe rejected")
	}
	b.Record(later, false)
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	// Fresh cooldown from the reopen.
	if ok, _ := b.Allow(later.Add(500 * time.Millisecond)); ok {
		t.Fatal("admitted during fresh cooldown")
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
}

func TestBreakerWindowExpiry(t *testing.T) {
	b := testBreaker()
	now := time.Now()
	for i := 0; i < 9; i++ {
		b.Record(now, false)
	}
	// The window (1s) rolls past: old failures age out, so one more failure
	// does not trip.
	b.Record(now.Add(2*time.Second), false)
	if b.State() != Closed {
		t.Fatal("aged-out failures still tripped breaker")
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if ok, _ := b.Allow(time.Now()); !ok {
		t.Fatal("nil breaker must admit")
	}
	b.Record(time.Now(), false)
	if b.State() != Closed || b.Opens() != 0 {
		t.Fatal("nil breaker state")
	}
}

func TestBreakerConcurrent(t *testing.T) {
	b := testBreaker()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := time.Now()
			for i := 0; i < 500; i++ {
				if ok, _ := b.Allow(now); ok {
					b.Record(now, (i+g)%3 != 0)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestShedderOrder(t *testing.T) {
	s := NewShedder(0.8)
	// Below high water: everything admitted.
	for _, k := range []WorkKind{KindCached, KindCold, KindStream} {
		if v := s.Decide(k, 7, 10, 0, 4, 0); v.Shed {
			t.Fatalf("%v shed at 70%% load", k)
		}
	}
	// At high water: streams shed, cold and cached still admitted.
	if v := s.Decide(KindStream, 8, 10, 0, 4, 0); !v.Shed || v.Reason != "stream" {
		t.Fatalf("stream at 80%% = %+v", v)
	}
	if v := s.Decide(KindCold, 8, 10, 0, 4, 0); v.Shed {
		t.Fatal("cold shed at 80%")
	}
	// At the cold threshold (0.8 + 0.1 = 0.9): cold shed too, cached never.
	if v := s.Decide(KindCold, 9, 10, 0, 4, 0); !v.Shed || v.Reason != "cold" {
		t.Fatalf("cold at 90%% = %+v", v)
	}
	if v := s.Decide(KindCached, 10, 10, 0, 4, 0); v.Shed {
		t.Fatal("cached read shed")
	}
	if v := s.Decide(KindStream, 8, 10, 0, 4, 0); v.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s floor", v.RetryAfter)
	}
}

func TestShedderDeadlineAware(t *testing.T) {
	s := NewShedder(0.8)
	for i := 0; i < 20; i++ {
		s.Observe(100 * time.Millisecond)
	}
	est := s.EstWait(8, 4) // 8 queued / 4 workers ~ 2 service times ~ 200ms
	if est < 100*time.Millisecond || est > 400*time.Millisecond {
		t.Fatalf("EstWait = %v", est)
	}
	// 50ms of budget left but ~200ms of queue ahead: shed regardless of kind
	// or load fraction.
	if v := s.Decide(KindCold, 2, 100, 8, 4, 50*time.Millisecond); !v.Shed || v.Reason != "deadline" {
		t.Fatalf("deadline verdict = %+v", v)
	}
	// Plenty of budget: admitted.
	if v := s.Decide(KindCold, 2, 100, 8, 4, 5*time.Second); v.Shed {
		t.Fatalf("shed with ample budget: %+v", v)
	}
	// Unknown budget (0): deadline shedding skipped.
	if v := s.Decide(KindCold, 2, 100, 8, 4, 0); v.Shed {
		t.Fatal("shed with unknown budget")
	}
}

func TestShedderDisabled(t *testing.T) {
	s := NewShedder(-1)
	if s.Enabled() {
		t.Fatal("negative high water must disable")
	}
	if v := s.Decide(KindStream, 100, 10, 50, 1, time.Nanosecond); v.Shed {
		t.Fatal("disabled shedder shed")
	}
	var nilShedder *Shedder
	if v := nilShedder.Decide(KindStream, 100, 10, 50, 1, 0); v.Shed {
		t.Fatal("nil shedder shed")
	}
	nilShedder.Observe(time.Second)
}

func TestShedderEWMAConverges(t *testing.T) {
	s := NewShedder(0)
	s.Observe(80 * time.Millisecond)
	if got := s.ServiceEWMA(); got != 80*time.Millisecond {
		t.Fatalf("first observation = %v", got)
	}
	for i := 0; i < 100; i++ {
		s.Observe(10 * time.Millisecond)
	}
	if got := s.ServiceEWMA(); got > 15*time.Millisecond {
		t.Fatalf("EWMA did not converge down: %v", got)
	}
}
