package resilience

import (
	"sync/atomic"
	"time"
)

// WorkKind classifies admission-bound work by what overload should drop
// first. The ordering encodes the serving layer's degradation policy:
// cached point reads are nearly free and keep their hit rate (and the
// caches warm) through an overload spike, so they are shed last; cold
// (cache-miss) executions burn a worker for a full plan; streaming
// executions additionally pin their worker across the client's read
// cadence, so they go first.
type WorkKind int

const (
	// KindCached is a read served (or likely served) from the result cache —
	// never shed below admission's own hard bound.
	KindCached WorkKind = iota
	// KindCold is a buffered execution that must run the plan.
	KindCold
	// KindStream is a partial-result streaming execution.
	KindStream
)

// String names the kind.
func (k WorkKind) String() string {
	switch k {
	case KindCached:
		return "cached"
	case KindCold:
		return "cold"
	case KindStream:
		return "stream"
	}
	return "unknown"
}

// ShedderConfig tunes a Shedder. The zero value selects the defaults; a
// negative HighWater disables shedding entirely.
type ShedderConfig struct {
	// HighWater is the inflight-load fraction of admission capacity
	// (workers + queue) above which streaming work is shed (default 0.85).
	// Cold work is shed halfway between HighWater and full capacity; cached
	// reads are never shed (admission's queue bound still applies to all).
	HighWater float64
}

// DefaultHighWater is the shedding threshold when none is configured.
const DefaultHighWater = 0.85

// Shedder decides, per request, whether overload demands dropping it before
// it queues. It also maintains an EWMA of observed service times so the
// decision is deadline-aware: a request whose estimated queue wait already
// exceeds its remaining deadline is shed immediately — an honest 503 now
// instead of a certain 504 after occupying queue space.
type Shedder struct {
	highWater float64
	// ewmaNS is the exponentially weighted moving average of service time in
	// nanoseconds (atomic; alpha 1/8 applied under CAS).
	ewmaNS atomic.Int64
}

// NewShedder builds a shedder. highWater 0 selects DefaultHighWater;
// negative disables shedding (Decide always admits).
func NewShedder(highWater float64) *Shedder {
	if highWater == 0 {
		highWater = DefaultHighWater
	}
	return &Shedder{highWater: highWater}
}

// Enabled reports whether the shedder ever drops anything.
func (s *Shedder) Enabled() bool { return s != nil && s.highWater > 0 }

// Observe folds one completed execution's wall time into the service-time
// EWMA.
func (s *Shedder) Observe(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	for {
		old := s.ewmaNS.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/8
		}
		if s.ewmaNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// ServiceEWMA returns the current service-time estimate (0 before any
// observation).
func (s *Shedder) ServiceEWMA() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.ewmaNS.Load())
}

// EstWait estimates how long a request entering the queue now will wait:
// queued requests ahead of it divided across the workers, at the EWMA
// service time.
func (s *Shedder) EstWait(queued int64, workers int) time.Duration {
	if s == nil || queued <= 0 || workers < 1 {
		return 0
	}
	return time.Duration(queued) * s.ServiceEWMA() / time.Duration(workers)
}

// Verdict is a shed decision.
type Verdict struct {
	// Shed reports whether the request must be dropped (503 + Retry-After).
	Shed bool
	// Reason labels the drop for counters: "stream", "cold", "deadline".
	Reason string
	// RetryAfter is the client hint — the estimated time for load to drain
	// below the threshold, floored at one second.
	RetryAfter time.Duration
}

// Decide applies the degradation policy to one request. load is admission's
// current inflight (executing + queued) count, capacity its hard bound
// (workers + queue), queued the waiters ahead, and remaining the request's
// deadline budget (0 when unknown — deadline shedding then skips).
func (s *Shedder) Decide(kind WorkKind, load, capacity, queued int64, workers int, remaining time.Duration) Verdict {
	if !s.Enabled() || capacity <= 0 {
		return Verdict{}
	}
	// Deadline-aware: if the queue ahead already eats the whole budget, the
	// request cannot finish in time no matter its kind.
	if remaining > 0 && queued > 0 {
		if est := s.EstWait(queued, workers); est > remaining {
			return Verdict{Shed: true, Reason: "deadline", RetryAfter: retryHint(est - remaining)}
		}
	}
	frac := float64(load) / float64(capacity)
	switch kind {
	case KindStream:
		if frac >= s.highWater {
			return Verdict{Shed: true, Reason: "stream", RetryAfter: retryHint(s.EstWait(queued, workers))}
		}
	case KindCold:
		if frac >= s.highWater+(1-s.highWater)/2 {
			return Verdict{Shed: true, Reason: "cold", RetryAfter: retryHint(s.EstWait(queued, workers))}
		}
	case KindCached:
		// Never shed: a cached read holds no worker long enough to matter,
		// and serving it keeps well-behaved tenants' p99 flat through the
		// spike.
	}
	return Verdict{}
}

// retryHint floors a drain estimate to a usable Retry-After.
func retryHint(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	return d
}
