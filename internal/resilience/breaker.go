// Package resilience provides the overload-protection primitives of the
// Polystore++ serving layer: per-tenant circuit breakers and high-water-mark
// load shedding. Together with per-tenant quotas (internal/tenant) they are
// the middleware's answer to the principle the admission controller already
// cites from BigDAWG: refuse work you cannot schedule — and refuse the
// *right* work first, so graceful degradation sheds streaming and cold-cache
// executions before cached point reads, and a tenant whose queries keep
// failing or timing out stops burning worker deadline budget for everyone.
package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// Closed: requests flow; failures are counted in a rolling window.
	Closed BreakerState = iota
	// Open: requests are rejected outright until the cooldown elapses.
	Open
	// HalfOpen: a bounded number of probe requests test recovery.
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. The zero value selects the documented
// defaults.
type BreakerConfig struct {
	// Window is the rolling interval failure rates are computed over
	// (default 10s), split into Buckets sub-intervals (default 10).
	Window  time.Duration
	Buckets int
	// MinSamples is the minimum number of recorded outcomes inside the
	// window before the failure ratio is trusted (default 20) — a single
	// failed request must not open a breaker.
	MinSamples int
	// FailureRatio opens the breaker when failures/samples reaches it
	// (default 0.5).
	FailureRatio float64
	// Cooldown is how long an open breaker rejects before probing
	// (default 5s).
	Cooldown time.Duration
	// HalfOpenProbes bounds concurrent trial requests in half-open state and
	// is the number of consecutive successes that close the breaker
	// (default 3).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.FailureRatio <= 0 {
		c.FailureRatio = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 3
	}
	return c
}

// Breaker is a closed/open/half-open circuit breaker over error and timeout
// rates in a rolling bucketed window. The serving layer keeps one per
// tenant: a tenant whose queries persistently fail or hit their deadlines
// trips its own breaker and is rejected cheaply (503 + Retry-After) instead
// of occupying workers for full deadline budgets, while other tenants'
// breakers stay closed.
//
// All methods take the current time explicitly so state transitions are
// deterministic under test. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	buckets     []bucket // ring, one per Window/Buckets slice
	idx         int      // current bucket
	bucketStart time.Time
	openedAt    time.Time
	probes      int // half-open: in-flight probes
	probeOKs    int // half-open: consecutive successes
	opens       int64
}

type bucket struct {
	ok, fail int64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, buckets: make([]bucket, cfg.Buckets)}
}

// bucketLen is the duration one ring bucket covers.
func (b *Breaker) bucketLen() time.Duration {
	return b.cfg.Window / time.Duration(b.cfg.Buckets)
}

// advance rotates the ring forward to cover now, zeroing buckets that fell
// out of the window. Called with the lock held.
func (b *Breaker) advance(now time.Time) {
	if b.bucketStart.IsZero() {
		b.bucketStart = now
		return
	}
	steps := int(now.Sub(b.bucketStart) / b.bucketLen())
	if steps <= 0 {
		return
	}
	if steps > len(b.buckets) {
		steps = len(b.buckets)
	}
	for i := 0; i < steps; i++ {
		b.idx = (b.idx + 1) % len(b.buckets)
		b.buckets[b.idx] = bucket{}
	}
	b.bucketStart = now
}

// totals sums the window. Called with the lock held.
func (b *Breaker) totals() (ok, fail int64) {
	for _, bk := range b.buckets {
		ok += bk.ok
		fail += bk.fail
	}
	return ok, fail
}

// Allow reports whether a request may proceed at time now. When the breaker
// is open it returns false plus the remaining cooldown — the honest
// Retry-After for the 503. In half-open state up to HalfOpenProbes requests
// are admitted as recovery probes; the rest are rejected with the bucket
// interval as the retry hint.
func (b *Breaker) Allow(now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true, 0
	case Open:
		if rem := b.cfg.Cooldown - now.Sub(b.openedAt); rem > 0 {
			return false, rem
		}
		b.state = HalfOpen
		b.probes = 0
		b.probeOKs = 0
		fallthrough
	default: // HalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			return false, b.bucketLen()
		}
		b.probes++
		return true, 0
	}
}

// Record feeds one finished request's outcome at time now. Failures are
// execution errors and deadline expiries; rejections (rate limits, queue
// overflow, shedding) must NOT be recorded — they are the server's
// condition, not the tenant's workload health.
func (b *Breaker) Record(now time.Time, success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if !success {
			b.trip(now)
			return
		}
		b.probeOKs++
		if b.probeOKs >= b.cfg.HalfOpenProbes {
			// Recovered: close with a clean window.
			b.state = Closed
			for i := range b.buckets {
				b.buckets[i] = bucket{}
			}
			b.bucketStart = now
		}
	case Closed:
		b.advance(now)
		if success {
			b.buckets[b.idx].ok++
			return
		}
		b.buckets[b.idx].fail++
		okN, failN := b.totals()
		if n := okN + failN; n >= int64(b.cfg.MinSamples) &&
			float64(failN)/float64(n) >= b.cfg.FailureRatio {
			b.trip(now)
		}
	case Open:
		// A request admitted before the trip finishing late: ignore.
	}
}

// trip opens the breaker. Called with the lock held.
func (b *Breaker) trip(now time.Time) {
	b.state = Open
	b.openedAt = now
	b.opens++
	for i := range b.buckets {
		b.buckets[i] = bucket{}
	}
	b.bucketStart = now
}

// State returns the current position (advancing Open -> HalfOpen is left to
// the next Allow, so a snapshot may read Open past the cooldown).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped over its lifetime.
func (b *Breaker) Opens() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
