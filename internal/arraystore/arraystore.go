// Package arraystore implements the array engine of the polystore (the
// SciDB role of §II: "matrix operations in SciDB"). It stores dense
// n-dimensional float64 arrays in fixed-size chunks with cell-level access,
// hyper-rectangle slicing, and whole-array matrix operations delegated to
// the tensor substrate.
package arraystore

import (
	"errors"
	"fmt"
	"sync"

	"polystorepp/internal/tensor"
)

// Sentinel errors.
var (
	ErrNoArray   = errors.New("arraystore: array not found")
	ErrExists    = errors.New("arraystore: array already exists")
	ErrBadCoords = errors.New("arraystore: bad coordinates")
)

// chunkDim is the side length of a storage chunk along each dimension.
const chunkDim = 64

// Array is one stored dense array. Cells default to zero; chunks materialize
// on first write.
type Array struct {
	mu     sync.RWMutex
	name   string
	shape  []int
	chunks map[string][]float64
}

// Store is a collection of named arrays. Safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	name   string
	arrays map[string]*Array
}

// New returns an empty array store.
func New(name string) *Store {
	return &Store{name: name, arrays: make(map[string]*Array)}
}

// Name returns the store instance name.
func (s *Store) Name() string { return s.name }

// Create registers a new array of the given shape.
func (s *Store) Create(name string, shape ...int) (*Array, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("%w: empty shape", ErrBadCoords)
	}
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("%w: dimension %d", ErrBadCoords, d)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.arrays[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	own := make([]int, len(shape))
	copy(own, shape)
	a := &Array{name: name, shape: own, chunks: make(map[string][]float64)}
	s.arrays[name] = a
	return a, nil
}

// Get returns the named array.
func (s *Store) Get(name string) (*Array, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.arrays[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoArray, name)
	}
	return a, nil
}

// Names returns the stored array names.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.arrays))
	for n := range s.arrays {
		out = append(out, n)
	}
	return out
}

// Shape returns a copy of the array shape.
func (a *Array) Shape() []int {
	out := make([]int, len(a.shape))
	copy(out, a.shape)
	return out
}

// Name returns the array name.
func (a *Array) Name() string { return a.name }

// chunkKeyAndOffset maps global coordinates to (chunk key, offset in chunk).
func (a *Array) chunkKeyAndOffset(coords []int) (string, int, error) {
	if len(coords) != len(a.shape) {
		return "", 0, fmt.Errorf("%w: %d coords for rank %d", ErrBadCoords, len(coords), len(a.shape))
	}
	key := make([]byte, 0, 4*len(coords))
	off := 0
	for i, c := range coords {
		if c < 0 || c >= a.shape[i] {
			return "", 0, fmt.Errorf("%w: coord %d out of [0,%d)", ErrBadCoords, c, a.shape[i])
		}
		ci := c / chunkDim
		key = append(key, byte(ci), byte(ci>>8), byte(ci>>16), byte(ci>>24))
		off = off*chunkDim + c%chunkDim
	}
	return string(key), off, nil
}

func (a *Array) chunkLen() int {
	n := 1
	for range a.shape {
		n *= chunkDim
	}
	return n
}

// Set writes one cell.
func (a *Array) Set(v float64, coords ...int) error {
	key, off, err := a.chunkKeyAndOffset(coords)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ch, ok := a.chunks[key]
	if !ok {
		ch = make([]float64, a.chunkLen())
		a.chunks[key] = ch
	}
	ch[off] = v
	return nil
}

// At reads one cell (zero when the chunk was never written).
func (a *Array) At(coords ...int) (float64, error) {
	key, off, err := a.chunkKeyAndOffset(coords)
	if err != nil {
		return 0, err
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	ch, ok := a.chunks[key]
	if !ok {
		return 0, nil
	}
	return ch[off], nil
}

// ChunkCount returns the number of materialized chunks.
func (a *Array) ChunkCount() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.chunks)
}

// Slice extracts the hyper-rectangle [lo[i], hi[i]) along each dimension as
// a dense tensor.
func (a *Array) Slice(lo, hi []int) (*tensor.Tensor, error) {
	if len(lo) != len(a.shape) || len(hi) != len(a.shape) {
		return nil, fmt.Errorf("%w: slice rank mismatch", ErrBadCoords)
	}
	outShape := make([]int, len(a.shape))
	for i := range lo {
		if lo[i] < 0 || hi[i] > a.shape[i] || lo[i] >= hi[i] {
			return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrBadCoords, lo[i], hi[i], a.shape[i])
		}
		outShape[i] = hi[i] - lo[i]
	}
	out, err := tensor.New(outShape...)
	if err != nil {
		return nil, err
	}
	coords := make([]int, len(a.shape))
	copy(coords, lo)
	data := out.Data()
	for i := range data {
		v, err := a.At(coords...)
		if err != nil {
			return nil, err
		}
		data[i] = v
		// Advance coords in row-major order.
		for d := len(coords) - 1; d >= 0; d-- {
			coords[d]++
			if coords[d] < hi[d] {
				break
			}
			coords[d] = lo[d]
		}
	}
	return out, nil
}

// FromTensor overwrites the array region starting at origin with t.
func (a *Array) FromTensor(t *tensor.Tensor, origin []int) error {
	shape := t.Shape()
	if len(origin) != len(a.shape) || len(shape) != len(a.shape) {
		return fmt.Errorf("%w: rank mismatch", ErrBadCoords)
	}
	coords := make([]int, len(origin))
	copy(coords, origin)
	data := t.Data()
	for i := range data {
		if err := a.Set(data[i], coords...); err != nil {
			return err
		}
		for d := len(coords) - 1; d >= 0; d-- {
			coords[d]++
			if coords[d] < origin[d]+shape[d] {
				break
			}
			coords[d] = origin[d]
		}
	}
	return nil
}

// MatMul multiplies two stored 2-D arrays into a named result array.
func (s *Store) MatMul(aName, bName, outName string) (*Array, error) {
	a, err := s.Get(aName)
	if err != nil {
		return nil, err
	}
	b, err := s.Get(bName)
	if err != nil {
		return nil, err
	}
	if len(a.shape) != 2 || len(b.shape) != 2 {
		return nil, fmt.Errorf("%w: MatMul wants 2-D arrays", ErrBadCoords)
	}
	at, err := a.Slice([]int{0, 0}, a.shape)
	if err != nil {
		return nil, err
	}
	bt, err := b.Slice([]int{0, 0}, b.shape)
	if err != nil {
		return nil, err
	}
	ct, err := tensor.MatMul(at, bt)
	if err != nil {
		return nil, err
	}
	out, err := s.Create(outName, ct.Dim(0), ct.Dim(1))
	if err != nil {
		return nil, err
	}
	if err := out.FromTensor(ct, []int{0, 0}); err != nil {
		return nil, err
	}
	return out, nil
}
