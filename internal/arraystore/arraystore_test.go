package arraystore

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"polystorepp/internal/tensor"
)

func TestCreateAndGet(t *testing.T) {
	s := New("arr")
	a, err := s.Create("m", 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "m" || len(a.Shape()) != 2 {
		t.Fatalf("array %+v", a)
	}
	if _, err := s.Create("m", 2, 2); !errors.Is(err, ErrExists) {
		t.Fatalf("dup: %v", err)
	}
	if _, err := s.Get("nope"); !errors.Is(err, ErrNoArray) {
		t.Fatalf("missing: %v", err)
	}
	if _, err := s.Create("bad"); !errors.Is(err, ErrBadCoords) {
		t.Fatalf("empty shape: %v", err)
	}
	if _, err := s.Create("bad2", 0); !errors.Is(err, ErrBadCoords) {
		t.Fatalf("zero dim: %v", err)
	}
	if len(s.Names()) != 1 {
		t.Fatalf("Names = %v", s.Names())
	}
}

func TestSetAtSparseChunks(t *testing.T) {
	s := New("arr")
	a, _ := s.Create("m", 200, 200)
	if err := a.Set(3.5, 150, 199); err != nil {
		t.Fatal(err)
	}
	v, err := a.At(150, 199)
	if err != nil || v != 3.5 {
		t.Fatalf("At = %v, %v", v, err)
	}
	// Untouched cells read zero without materializing chunks.
	v, err = a.At(0, 0)
	if err != nil || v != 0 {
		t.Fatalf("zero cell = %v, %v", v, err)
	}
	if a.ChunkCount() != 1 {
		t.Fatalf("chunks = %d, want 1 (lazy)", a.ChunkCount())
	}
	if err := a.Set(1, 200, 0); !errors.Is(err, ErrBadCoords) {
		t.Fatalf("oob set: %v", err)
	}
	if _, err := a.At(0); !errors.Is(err, ErrBadCoords) {
		t.Fatalf("rank mismatch: %v", err)
	}
}

func TestSliceRoundTrip(t *testing.T) {
	s := New("arr")
	a, _ := s.Create("m", 70, 70) // crosses the 64-chunk boundary
	rng := rand.New(rand.NewSource(4))
	want, _ := tensor.Rand(rng, 1, 20, 30)
	if err := a.FromTensor(want, []int{50, 30}); err != nil {
		t.Fatal(err)
	}
	got, err := a.Slice([]int{50, 30}, []int{70, 60})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("slice round trip differs")
	}
	if _, err := a.Slice([]int{0}, []int{1}); !errors.Is(err, ErrBadCoords) {
		t.Fatalf("rank: %v", err)
	}
	if _, err := a.Slice([]int{10, 10}, []int{5, 20}); !errors.Is(err, ErrBadCoords) {
		t.Fatalf("inverted: %v", err)
	}
	if _, err := a.Slice([]int{0, 0}, []int{80, 10}); !errors.Is(err, ErrBadCoords) {
		t.Fatalf("oob: %v", err)
	}
}

func TestMatMulMatchesTensor(t *testing.T) {
	s := New("arr")
	rng := rand.New(rand.NewSource(8))
	at, _ := tensor.Rand(rng, 1, 30, 20)
	bt, _ := tensor.Rand(rng, 1, 20, 10)
	aa, _ := s.Create("a", 30, 20)
	bb, _ := s.Create("b", 20, 10)
	if err := aa.FromTensor(at, []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := bb.FromTensor(bt, []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	out, err := s.MatMul("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Slice([]int{0, 0}, []int{30, 10})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.MatMul(at, bt)
	if !got.AlmostEqual(want, 1e-12) {
		t.Fatal("arraystore MatMul differs from tensor MatMul")
	}
	if _, err := s.MatMul("a", "nope", "d"); !errors.Is(err, ErrNoArray) {
		t.Fatalf("missing operand: %v", err)
	}
}

func TestThreeDimensional(t *testing.T) {
	s := New("arr")
	a, err := s.Create("cube", 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Set(7, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	v, err := a.At(1, 2, 3)
	if err != nil || v != 7 {
		t.Fatalf("3d At = %v, %v", v, err)
	}
	sl, err := a.Slice([]int{0, 0, 0}, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	v, _ = sl.At(1, 2, 3)
	if v != 7 {
		t.Fatalf("3d slice value = %v", v)
	}
}

// Property: Set then At returns the stored value for random coordinates.
func TestPropertySetAt(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New("p")
		a, err := s.Create("m", 128, 128)
		if err != nil {
			return false
		}
		type cell struct{ r, c int }
		written := map[cell]float64{}
		for i := 0; i < 50; i++ {
			r, c := rng.Intn(128), rng.Intn(128)
			v := rng.Float64()
			if err := a.Set(v, r, c); err != nil {
				return false
			}
			written[cell{r, c}] = v
		}
		for cc, want := range written {
			got, err := a.At(cc.r, cc.c)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
