package lru

import "container/list"

// CostCache is Cache with a per-entry cost dimension: eviction is driven by
// total cost (e.g. result bytes) as well as entry count, so one cache bound
// can mean "at most 64 MiB of cached results" instead of only "at most 256
// results". Entries whose cost alone exceeds the cost bound are bypassed
// rather than admitted (admitting one would evict the whole cache for an
// entry unlikely to be re-served before aging out). Like Cache, it is NOT
// safe for concurrent use: callers guard it with their own lock.
type CostCache[V any] struct {
	maxEntries int
	maxCost    int64 // <= 0 means no cost bound
	cost       int64
	evictions  int64
	order      *list.List // front = most recently used; values are *costEntry[V]
	entries    map[string]*list.Element
	onEvict    func(key string, cost int64)
}

type costEntry[V any] struct {
	key  string
	val  V
	cost int64
}

// NewCost returns a cache bounded to maxEntries entries (< 1 treated as 1)
// and maxCost total cost (<= 0 disables the cost bound).
func NewCost[V any](maxEntries int, maxCost int64) *CostCache[V] {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &CostCache[V]{
		maxEntries: maxEntries,
		maxCost:    maxCost,
		order:      list.New(),
		entries:    make(map[string]*list.Element),
	}
}

// Get returns the value under key, marking it most recently used.
func (c *CostCache[V]) Get(key string) (V, bool) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*costEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put stores v under key with the given cost. It returns the value now
// cached plus whether the key is cached at all: the incumbent when the key
// is already present (racing fills produce equivalent values; the
// incumbent's cost is kept), and (v, false) when the entry is oversized —
// its cost alone exceeds the cost bound — and was bypassed.
//
// Costs below 1 are clamped to 1: every entry occupies real memory beyond
// its payload, and admitting "free" entries would let a flood of zero-cost
// (or, worse, negative-cost) values grow the cache unboundedly under an
// intact-looking cost bound — or drive the running total negative, wedging
// eviction permanently.
func (c *CostCache[V]) Put(key string, v V, cost int64) (V, bool) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*costEntry[V]).val, true
	}
	if cost < 1 {
		cost = 1
	}
	if c.maxCost > 0 && cost > c.maxCost {
		return v, false
	}
	c.entries[key] = c.order.PushFront(&costEntry[V]{key: key, val: v, cost: cost})
	c.cost += cost
	for c.order.Len() > c.maxEntries || (c.maxCost > 0 && c.cost > c.maxCost) {
		oldest := c.order.Back()
		e := oldest.Value.(*costEntry[V])
		c.order.Remove(oldest)
		delete(c.entries, e.key)
		c.cost -= e.cost
		c.evictions++
		if c.onEvict != nil {
			c.onEvict(e.key, e.cost)
		}
	}
	return v, true
}

// Remove evicts the entry under key, reporting whether it was present. The
// eviction callback fires for removed entries, and removals count toward
// Evictions.
func (c *CostCache[V]) Remove(key string) bool {
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	e := el.Value.(*costEntry[V])
	c.order.Remove(el)
	delete(c.entries, e.key)
	c.cost -= e.cost
	c.evictions++
	if c.onEvict != nil {
		c.onEvict(e.key, e.cost)
	}
	return true
}

// SetOnEvict registers fn to run whenever an entry leaves the cache (LRU
// eviction or Remove), receiving the departing key and its charged cost.
// Callbacks run synchronously inside Put/Remove and must not call back into
// the cache.
func (c *CostCache[V]) SetOnEvict(fn func(key string, cost int64)) { c.onEvict = fn }

// Len returns the number of cached entries.
func (c *CostCache[V]) Len() int { return c.order.Len() }

// Cost returns the summed cost of the cached entries.
func (c *CostCache[V]) Cost() int64 { return c.cost }

// Evictions returns how many entries the cache has evicted over its
// lifetime (bypassed oversized entries are not evictions).
func (c *CostCache[V]) Evictions() int64 { return c.evictions }
