package lru

import "testing"

func TestTenantCostSingleOwnerUncapped(t *testing.T) {
	c := NewTenantCost[int](100, 1000, 0.5)
	// One owner may use the whole budget: the share only binds under
	// contention.
	for i, k := range []string{"a", "b", "c", "d"} {
		if _, ok := c.Put(k, i, 250, "alice"); !ok {
			t.Fatalf("put %q rejected", k)
		}
	}
	if c.Cost() != 1000 || c.OwnerCost("alice") != 1000 || c.Owners() != 1 {
		t.Fatalf("cost=%d alice=%d owners=%d", c.Cost(), c.OwnerCost("alice"), c.Owners())
	}
	if c.Evictions() != 0 {
		t.Fatalf("evictions = %d, want 0", c.Evictions())
	}
}

func TestTenantCostShareEnforcedUnderContention(t *testing.T) {
	c := NewTenantCost[string](100, 1000, 0.5)
	c.Put("bob-1", "x", 100, "bob")
	// Alice floods: with bob present her charge is capped at 500, evicting
	// her own oldest entries — never bob's.
	for _, k := range []string{"a1", "a2", "a3", "a4", "a5", "a6", "a7"} {
		c.Put(k, "y", 100, "alice")
	}
	if got := c.OwnerCost("alice"); got != 500 {
		t.Fatalf("alice charge = %d, want 500", got)
	}
	if got := c.OwnerCost("bob"); got != 100 {
		t.Fatalf("bob charge = %d, want 100 (victim of alice's flood)", got)
	}
	if _, ok := c.Get("bob-1"); !ok {
		t.Fatal("bob's entry evicted by alice's flood")
	}
	// Alice's oldest entries went first.
	for _, gone := range []string{"a1", "a2"} {
		if _, ok := c.Get(gone); ok {
			t.Fatalf("%q should have been evicted", gone)
		}
	}
	for _, kept := range []string{"a3", "a4", "a5", "a6", "a7"} {
		if _, ok := c.Get(kept); !ok {
			t.Fatalf("%q should have survived", kept)
		}
	}
}

func TestTenantCostGlobalEvictionRefundsOwner(t *testing.T) {
	c := NewTenantCost[int](100, 300, 1) // share 1: only the global bound binds
	c.Put("a", 1, 150, "alice")
	c.Put("b", 2, 150, "bob")
	c.Put("c", 3, 150, "bob") // over budget: evicts LRU ("a"), refunds alice
	if got := c.OwnerCost("alice"); got != 0 {
		t.Fatalf("alice charge = %d after global eviction, want 0", got)
	}
	if c.Owners() != 1 {
		t.Fatalf("owners = %d, want 1 (alice fully refunded)", c.Owners())
	}
	if got := c.OwnerCost("bob"); got != 300 {
		t.Fatalf("bob charge = %d, want 300", got)
	}
}

func TestTenantCostIncumbentKeepsOriginalOwner(t *testing.T) {
	c := NewTenantCost[int](100, 1000, 0.5)
	c.Put("k", 1, 100, "alice")
	got, ok := c.Put("k", 2, 999, "bob")
	if !ok || got != 1 {
		t.Fatalf("incumbent put = (%d, %v), want (1, true)", got, ok)
	}
	if c.OwnerCost("bob") != 0 || c.OwnerCost("alice") != 100 {
		t.Fatalf("charges: alice=%d bob=%d", c.OwnerCost("alice"), c.OwnerCost("bob"))
	}
}

func TestTenantCostOversizedBypassed(t *testing.T) {
	c := NewTenantCost[int](100, 100, 0.5)
	if _, ok := c.Put("big", 1, 200, "alice"); ok {
		t.Fatal("oversized entry admitted")
	}
	if c.Owners() != 0 || c.Len() != 0 {
		t.Fatal("bypassed entry left a charge behind")
	}
}

func TestTenantCostSingleHugeEntryToleratedUnderContention(t *testing.T) {
	c := NewTenantCost[int](100, 1000, 0.5)
	c.Put("b", 1, 100, "bob")
	// Alice's single 700-cost entry exceeds her 500 share but is her only
	// entry: admitted (the global bound still protects the cache).
	if _, ok := c.Put("a", 2, 700, "alice"); !ok {
		t.Fatal("single over-share entry rejected")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("over-share entry self-evicted")
	}
	// Her next insert trims back toward the share, evicting her oldest.
	c.Put("a2", 3, 100, "alice")
	if _, ok := c.Get("a"); ok {
		t.Fatal("oldest over-share entry survived the trim")
	}
	if got := c.OwnerCost("alice"); got != 100 {
		t.Fatalf("alice charge = %d after trim, want 100", got)
	}
}

func TestCostCacheRemove(t *testing.T) {
	c := NewCost[int](10, 100)
	var evicted []string
	c.SetOnEvict(func(key string, cost int64) { evicted = append(evicted, key) })
	c.Put("a", 1, 10)
	if !c.Remove("a") {
		t.Fatal("Remove missed present key")
	}
	if c.Remove("a") {
		t.Fatal("Remove found absent key")
	}
	if c.Cost() != 0 || c.Len() != 0 || c.Evictions() != 1 {
		t.Fatalf("cost=%d len=%d evictions=%d", c.Cost(), c.Len(), c.Evictions())
	}
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evict callback saw %v", evicted)
	}
}

func TestTenantCostTinyBudgetShareClampsToOne(t *testing.T) {
	// share * maxCost < 1 truncates to a zero limit, which used to trim every
	// contended tenant down to a single entry no matter how cheap its
	// entries were. The limit clamps to >= 1, so unit-cost entries behave
	// like any other cost that exceeds the share: the newcomer is spared and
	// older entries trim one at a time, not wholesale.
	c := NewTenantCost[int](100, 4, 0.1) // share limit would truncate to 0
	c.Put("bob-1", 1, 1, "bob")
	c.Put("a1", 1, 1, "alice")
	c.Put("a2", 2, 1, "alice")
	// Alice is over the clamped limit (1), so her older entry trims — but
	// she keeps the newest rather than being flushed to nothing.
	if _, ok := c.Get("a2"); !ok {
		t.Fatal("newest entry evicted under tiny-budget share")
	}
	if got := c.OwnerCost("alice"); got < 1 {
		t.Fatalf("alice charge = %d, want >= 1 (clamped share)", got)
	}
	if _, ok := c.Get("bob-1"); !ok {
		t.Fatal("bob's entry evicted by alice's inserts")
	}
}
