// Package lru provides the bounded least-recently-used map backing the
// serving layer's plan and result caches, so eviction and recency logic
// lives in one place.
package lru

import "container/list"

// Cache maps string keys to values, evicting the least recently used entry
// past capacity. It is NOT safe for concurrent use: callers guard it with
// their own lock alongside their hit/miss accounting.
type Cache[V any] struct {
	cap     int
	order   *list.List // front = most recently used; values are *entry[V]
	entries map[string]*list.Element
}

type entry[V any] struct {
	key string
	val V
}

// New returns a cache bounded to capacity entries. capacity < 1 is treated
// as 1.
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the value under key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put stores v under key and returns the value now cached: the incumbent
// when the key is already present — racing fills produce equivalent values
// and keeping one lets repeated hits share it — otherwise v.
func (c *Cache[V]) Put(key string, v V) V {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[V]).val
	}
	c.entries[key] = c.order.PushFront(&entry[V]{key: key, val: v})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry[V]).key)
	}
	return v
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int { return c.order.Len() }
