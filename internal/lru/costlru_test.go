package lru

import (
	"fmt"
	"testing"
)

func TestCostEviction(t *testing.T) {
	c := NewCost[string](100, 10)
	c.Put("a", "a", 4)
	c.Put("b", "b", 4)
	if _, ok := c.Get("a"); !ok { // a is now MRU
		t.Fatal("a missing")
	}
	c.Put("c", "c", 4) // cost 12 > 10: evicts b (LRU)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite being MRU")
	}
	if c.Cost() != 8 || c.Len() != 2 {
		t.Fatalf("cost=%d len=%d, want 8, 2", c.Cost(), c.Len())
	}
}

func TestCostOversizedBypass(t *testing.T) {
	c := NewCost[string](100, 10)
	c.Put("small", "s", 2)
	if _, admitted := c.Put("huge", "h", 11); admitted {
		t.Fatal("oversized entry admitted")
	}
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized entry cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("bypass evicted an unrelated entry")
	}
	if c.Cost() != 2 || c.Len() != 1 {
		t.Fatalf("cost=%d len=%d after bypass, want 2, 1", c.Cost(), c.Len())
	}
}

func TestCostEntryCapStillHolds(t *testing.T) {
	c := NewCost[int](2, 0) // no cost bound
	c.Put("a", 1, 100)
	c.Put("b", 2, 100)
	c.Put("c", 3, 100)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want entry cap 2", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
}

// TestCostZeroCostCannotEvadeBound pins the clamp on free entries: a flood
// of 0-cost values must not grow the cache past its cost bound (each entry
// charges at least 1), and the evictions it forces are counted.
func TestCostZeroCostCannotEvadeBound(t *testing.T) {
	c := NewCost[int](1<<20, 8)
	const n = 100
	for i := 0; i < n; i++ {
		if _, admitted := c.Put(fmt.Sprintf("k%d", i), i, 0); !admitted {
			t.Fatalf("zero-cost entry %d bypassed", i)
		}
	}
	if c.Len() != 8 {
		t.Fatalf("len = %d after %d zero-cost puts, want cost bound 8", c.Len(), n)
	}
	if c.Cost() != 8 {
		t.Fatalf("cost = %d, want 8 (1 per clamped entry)", c.Cost())
	}
	if c.Evictions() != n-8 {
		t.Fatalf("evictions = %d, want %d", c.Evictions(), n-8)
	}
}

// TestCostNegativeCostCannotWedgeEviction pins that a negative cost cannot
// drive the running total negative — which would let later entries
// accumulate past the bound before eviction ever fires.
func TestCostNegativeCostCannotWedgeEviction(t *testing.T) {
	c := NewCost[int](100, 10)
	c.Put("neg", 1, -50)
	if c.Cost() != 1 {
		t.Fatalf("cost = %d after negative-cost put, want clamp to 1", c.Cost())
	}
	c.Put("a", 2, 10) // 1 + 10 > 10: must evict "neg", not absorb it as headroom
	if _, ok := c.Get("neg"); ok {
		t.Fatal("negative-cost entry survived past the cost bound")
	}
	if c.Cost() != 10 || c.Len() != 1 {
		t.Fatalf("cost=%d len=%d, want 10, 1", c.Cost(), c.Len())
	}
}

func TestCostPutKeepsIncumbent(t *testing.T) {
	c := NewCost[int](4, 100)
	if got, ok := c.Put("k", 1, 10); !ok || got != 1 {
		t.Fatalf("first put = (%d, %v)", got, ok)
	}
	if got, ok := c.Put("k", 2, 50); !ok || got != 1 {
		t.Fatalf("second put = (%d, %v), want incumbent (1, true)", got, ok)
	}
	if c.Cost() != 10 {
		t.Fatalf("cost = %d, want incumbent's 10", c.Cost())
	}
}
