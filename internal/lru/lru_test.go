package lru

import "testing"

func TestEvictionOrder(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // a is now MRU
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b (LRU)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPutKeepsIncumbent(t *testing.T) {
	c := New[int](4)
	if got := c.Put("k", 1); got != 1 {
		t.Fatalf("first put returned %d", got)
	}
	if got := c.Put("k", 2); got != 1 {
		t.Fatalf("second put returned %d, want incumbent 1", got)
	}
	if v, _ := c.Get("k"); v != 1 {
		t.Fatalf("cached = %d, want 1", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestTinyCapacity(t *testing.T) {
	c := New[string](0) // clamps to 1
	c.Put("a", "x")
	c.Put("b", "y")
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
}
