package lru

import "container/list"

// TenantCostCache wraps CostCache with per-owner cost accounting: every
// entry is charged to the tenant that inserted it, and when more than one
// tenant holds entries, each tenant's total charge is capped at a share of
// the cost budget. A tenant flooding the cache with its own results then
// evicts its *own* oldest entries, not everyone else's — cache pollution
// stops being a cross-tenant attack. With a single owner (the common
// single-tenant deployment) no share is enforced and the full budget
// applies, so behavior is identical to a plain CostCache.
//
// Like CostCache, it is NOT safe for concurrent use: callers guard it with
// their own lock.
type TenantCostCache[V any] struct {
	c       *CostCache[V]
	maxCost int64
	share   float64 // per-owner fraction of maxCost, enforced when owners > 1
	owners  map[string]*ownerCharge
	keys    map[string]ownedKey // mirror: key -> owner + charged cost
}

type ownerCharge struct {
	cost  int64
	order *list.List // key insertion order; front = oldest
	elems map[string]*list.Element
}

type ownedKey struct {
	owner string
	cost  int64
}

// DefaultTenantShare is the per-tenant cost fraction when none is
// configured: half the budget, so two contending tenants split it evenly
// and no one tenant can hold more than half while contended.
const DefaultTenantShare = 0.5

// NewTenantCost builds a tenant-charged cache over the same bounds as
// NewCost. share is the per-owner fraction of maxCost enforced while more
// than one owner holds entries; share <= 0 selects DefaultTenantShare,
// share >= 1 disables per-owner capping.
func NewTenantCost[V any](maxEntries int, maxCost int64, share float64) *TenantCostCache[V] {
	if share <= 0 {
		share = DefaultTenantShare
	}
	t := &TenantCostCache[V]{
		c:       NewCost[V](maxEntries, maxCost),
		maxCost: maxCost,
		share:   share,
		owners:  make(map[string]*ownerCharge),
		keys:    make(map[string]ownedKey),
	}
	t.c.SetOnEvict(t.uncharge)
	return t
}

// Get returns the value under key, marking it most recently used.
func (t *TenantCostCache[V]) Get(key string) (V, bool) { return t.c.Get(key) }

// Put stores v under key with the given cost, charged to owner, with the
// same incumbent and oversized-bypass semantics as CostCache.Put. After a
// successful insert, if more than one owner holds entries and owner's total
// charge exceeds its share of the budget, owner's oldest entries are
// evicted (never the entry just inserted) until it fits.
func (t *TenantCostCache[V]) Put(key string, v V, cost int64, owner string) (V, bool) {
	if _, exists := t.keys[key]; exists {
		// Incumbent: touch it and keep its value and original charge, matching
		// CostCache's racing-fill semantics.
		got, _ := t.c.Get(key)
		return got, true
	}
	if cost < 1 {
		cost = 1 // mirror CostCache's clamp so charges match real occupancy
	}
	got, ok := t.c.Put(key, v, cost)
	if !ok {
		return got, false
	}
	oc := t.owners[owner]
	if oc == nil {
		oc = &ownerCharge{order: list.New(), elems: make(map[string]*list.Element)}
		t.owners[owner] = oc
	}
	oc.cost += cost
	oc.elems[key] = oc.order.PushBack(key)
	t.keys[key] = ownedKey{owner: owner, cost: cost}
	t.enforceShare(owner, key)
	return got, true
}

// enforceShare trims owner back under its budget share, sparing keep (the
// entry that triggered the trim): a single entry larger than the share is
// admitted — the global cost bound still applies — because evicting the
// newcomer itself would make oversized inserts silently uncacheable for
// contended tenants only.
func (t *TenantCostCache[V]) enforceShare(owner, keep string) {
	if t.maxCost <= 0 || t.share >= 1 || len(t.owners) < 2 {
		return
	}
	limit := int64(t.share * float64(t.maxCost))
	if limit < 1 {
		// Fractional shares of tiny budgets truncate to 0, which would trim
		// every contended tenant down to a single entry regardless of cost.
		// The share is "a fraction of the budget", never "nothing".
		limit = 1
	}
	oc := t.owners[owner]
	for oc != nil && oc.cost > limit && oc.order.Len() > 1 {
		oldest := oc.order.Front().Value.(string)
		if oldest == keep {
			break
		}
		t.c.Remove(oldest) // fires uncharge via the eviction callback
		oc = t.owners[owner]
	}
}

// uncharge is the CostCache eviction callback: it refunds the departing
// entry's cost to its owner's ledger.
func (t *TenantCostCache[V]) uncharge(key string, _ int64) {
	ok, exists := t.keys[key]
	if !exists {
		return
	}
	delete(t.keys, key)
	oc := t.owners[ok.owner]
	if oc == nil {
		return
	}
	oc.cost -= ok.cost
	if el, present := oc.elems[key]; present {
		oc.order.Remove(el)
		delete(oc.elems, key)
	}
	if oc.order.Len() == 0 {
		delete(t.owners, ok.owner)
	}
}

// Remove evicts the entry under key, reporting whether it was present.
func (t *TenantCostCache[V]) Remove(key string) bool { return t.c.Remove(key) }

// Len returns the number of cached entries.
func (t *TenantCostCache[V]) Len() int { return t.c.Len() }

// Cost returns the summed cost of the cached entries.
func (t *TenantCostCache[V]) Cost() int64 { return t.c.Cost() }

// Evictions returns how many entries have been evicted over the cache's
// lifetime.
func (t *TenantCostCache[V]) Evictions() int64 { return t.c.Evictions() }

// Owners returns how many distinct tenants currently hold entries.
func (t *TenantCostCache[V]) Owners() int { return len(t.owners) }

// OwnerCost returns the bytes currently charged to one owner.
func (t *TenantCostCache[V]) OwnerCost(owner string) int64 {
	if oc := t.owners[owner]; oc != nil {
		return oc.cost
	}
	return 0
}

// EachOwner visits every owner's current charge.
func (t *TenantCostCache[V]) EachOwner(fn func(owner string, cost int64)) {
	for owner, oc := range t.owners {
		fn(owner, oc.cost)
	}
}
