module polystorepp

go 1.22
