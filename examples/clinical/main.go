// Clinical: the Figure 2 end-to-end heterogeneous program on a synthetic
// MIMIC-III-like dataset — extract admission features (relational), ICU
// stay aggregates (relational), vitals summaries (timeseries), join into
// feature vectors, train an MLP, and predict ICU length-of-stay class.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"polystorepp"
	"polystorepp/internal/datagen"
	"polystorepp/internal/eide"
	"polystorepp/internal/hw"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	data, err := datagen.GenerateClinical(rand.New(rand.NewSource(42)), 500)
	if err != nil {
		return err
	}
	sys := polystore.New(
		polystore.WithRelational("db-clinical", data.Relational),
		polystore.WithTimeseries("ts-vitals", data.Timeseries),
		polystore.WithText("txt-notes", data.Text),
		polystore.WithStream("st-devices", data.Stream),
		polystore.WithML("ml"),
		polystore.WithAccelerators(hw.Coprocessor, hw.NewFPGA(), hw.NewGPU(), hw.NewTPU()),
	)

	p := sys.NewProgram()
	pred, err := eide.BuildClinicalPipeline(p, eide.ClinicalConfig{
		Relational: "db-clinical",
		Timeseries: "ts-vitals",
		Text:       "txt-notes",
		ML:         "ml",
	})
	if err != nil {
		return err
	}
	res, rep, err := sys.Run(ctx, p)
	if err != nil {
		return err
	}
	out := res.Values[pred].Batch
	probs, err := out.Floats(1)
	if err != nil {
		return err
	}
	long := 0
	for _, pr := range probs {
		if pr >= 0.5 {
			long++
		}
	}
	fmt.Printf("predicted long ICU stay for %d of %d stays\n", long, len(probs))
	fmt.Printf("simulated end-to-end latency: %.3f ms, energy %.3f J, %d migrations\n",
		rep.Latency*1e3, rep.Energy, rep.Migrations)

	// The same question through the natural-language frontend (§IV-A-e).
	nl := sys.NLTranslator("db-clinical", "ts-vitals", "txt-notes", "ml")
	p2, rule, err := nl.Translate("Will patients have a long stay at the hospital when they exit the ICU?")
	if err != nil {
		return err
	}
	if _, _, err := sys.Run(ctx, p2); err != nil {
		return err
	}
	fmt.Printf("natural-language route: matched rule %q and produced the same pipeline\n", rule)
	return nil
}
