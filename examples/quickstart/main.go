// Quickstart: build a two-engine polystore, run a federated SQL program,
// and compare CPU-only execution with accelerator offload.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"polystorepp"
	"polystorepp/internal/cast"
	"polystorepp/internal/hw"
	"polystorepp/internal/relational"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// 1. Create a relational store and load a table.
	store := relational.NewStore("db1")
	schema := cast.MustSchema(
		cast.Column{Name: "id", Type: cast.Int64},
		cast.Column{Name: "score", Type: cast.Int64},
	)
	events, err := store.CreateTable("events", schema)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	batch := cast.NewBatch(schema, 200_000)
	for i := 0; i < 200_000; i++ {
		if err := batch.AppendRow(int64(i), rng.Int63n(1_000_000)); err != nil {
			return err
		}
	}
	if err := events.InsertBatch(batch); err != nil {
		return err
	}

	// 2. Assemble a Polystore++ system with hardware accelerator models.
	sys := polystore.New(
		polystore.WithRelational("db1", store),
		polystore.WithAccelerators(hw.Coprocessor, hw.NewFPGA(), hw.NewGPU()),
	)

	// 3. Run the same program with and without acceleration.
	for _, accel := range []bool{false, true} {
		p := sys.NewProgram()
		if _, err := p.SQL("db1", "SELECT id, score FROM events ORDER BY score DESC LIMIT 10"); err != nil {
			return err
		}
		res, rep, err := sys.RunWith(ctx, p, polystore.Options{Level: 3, Accel: accel})
		if err != nil {
			return err
		}
		fmt.Printf("accel=%-5v sim latency=%.6fs energy=%.3fJ wall=%s\n",
			accel, rep.Latency, rep.Energy, rep.Wall)
		if !accel {
			out := res.First().Batch
			fmt.Printf("top scores (%d rows): ", out.Rows())
			scores, _ := out.Ints(1)
			fmt.Println(scores)
		}
	}
	return nil
}
