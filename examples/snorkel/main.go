// Snorkel: the Figure 3 weak-supervision training loop — mini-batch SGD
// where every batch is fetched from the relational store with SQL
// (load_data), the tight SQL/ML integration a Polystore++ system detects
// and accelerates.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"polystorepp/internal/datagen"
	"polystorepp/internal/hw"
	"polystorepp/internal/mlengine"
	"polystorepp/internal/relational"
	"polystorepp/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const (
		rows      = 20000
		batchSize = 512
		epochs    = 3
	)
	store, err := datagen.GenerateSnorkel(rand.New(rand.NewSource(5)), rows)
	if err != nil {
		return err
	}
	engine := relational.NewEngine(store)
	model, err := mlengine.NewMLP(rand.New(rand.NewSource(1)), 4, 16, 1)
	if err != nil {
		return err
	}

	fpga := hw.NewFPGA()
	if _, err := fpga.ConfigureKernel(hw.KFilter.String(), hw.LUTCost(hw.KFilter)); err != nil {
		return err
	}
	var loadWall, trainWall time.Duration
	var loadSim, trainSim float64
	cpu := hw.NewHostCPU()

	for epoch := 0; epoch < epochs; epoch++ {
		var lastLoss float64
		for lo := 0; lo < rows; lo += batchSize {
			// load_data: SQL interspersed in the training loop (Figure 3).
			t0 := time.Now()
			sql := fmt.Sprintf(
				"SELECT f0, f1, f2, f3, weak_label FROM unlabeled WHERE id >= %d AND id < %d",
				lo, lo+batchSize)
			batch, _, err := engine.Query(ctx, sql)
			if err != nil {
				return err
			}
			loadWall += time.Since(t0)
			w := hw.Work{Items: int64(batch.Rows()), Bytes: batch.ByteSize()}
			if c, err := fpga.KernelCost(hw.KFilter, w); err == nil {
				loadSim += c.Seconds
			}

			// Assemble tensors and take the gradient step.
			t1 := time.Now()
			x, err := tensor.New(batch.Rows(), 4)
			if err != nil {
				return err
			}
			y, err := tensor.New(batch.Rows(), 1)
			if err != nil {
				return err
			}
			for i := 0; i < batch.Rows(); i++ {
				for j := 0; j < 4; j++ {
					v, err := batch.Value(i, j)
					if err != nil {
						return err
					}
					if err := x.Set(v.(float64), i, j); err != nil {
						return err
					}
				}
				lv, err := batch.Value(i, 4)
				if err != nil {
					return err
				}
				if err := y.Set(float64(lv.(int64)), i, 0); err != nil {
					return err
				}
			}
			loss, err := model.TrainBatch(x, y, 0.3)
			if err != nil {
				return err
			}
			lastLoss = loss
			trainWall += time.Since(t1)
			for _, gw := range model.EpochGEMMWork(batch.Rows(), batch.Rows()) {
				gw.Items = 0
				if c, err := cpu.KernelCost(hw.KGEMM, gw); err == nil {
					trainSim += c.Seconds
				}
			}
		}
		fmt.Printf("epoch %d: loss %.4f\n", epoch, lastLoss)
	}
	fmt.Printf("wall: load_data %s, train %s (load share %.1f%%)\n",
		loadWall, trainWall, 100*float64(loadWall)/float64(loadWall+trainWall))
	fmt.Printf("simulated: fpga-accelerated load %.6fs vs cpu train %.6fs\n", loadSim, trainSim)
	return nil
}
