// NLQuery: the §IV-A-e natural-language frontend — restricted English
// questions compiled to heterogeneous programs and executed across the
// polystore.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"polystorepp"
	"polystorepp/internal/datagen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	data, err := datagen.GenerateClinical(rand.New(rand.NewSource(42)), 300)
	if err != nil {
		return err
	}
	sys := polystore.New(
		polystore.WithRelational("db-clinical", data.Relational),
		polystore.WithTimeseries("ts-vitals", data.Timeseries),
		polystore.WithText("txt-notes", data.Text),
		polystore.WithStream("st-devices", data.Stream),
		polystore.WithML("ml"),
	)
	nl := sys.NLTranslator("db-clinical", "ts-vitals", "txt-notes", "ml")

	questions := []string{
		"How many patients are there?",
		"What is the average icu_hours of stays by pid?",
		"Find notes mentioning ventilator",
		"Will patients have a long stay at the hospital when they exit the ICU?",
	}
	for _, q := range questions {
		prog, rule, err := nl.Translate(q)
		if err != nil {
			return err
		}
		res, rep, err := sys.Run(ctx, prog)
		if err != nil {
			return err
		}
		fmt.Printf("Q: %s\n   rule=%s", q, rule)
		if b := res.First().Batch; b != nil {
			fmt.Printf(" rows=%d schema=%s", b.Rows(), b.Schema())
			if b.Rows() == 1 && b.Schema().Len() == 1 {
				v, _ := b.Value(0, 0)
				fmt.Printf(" answer=%v", v)
			}
		}
		fmt.Printf(" (sim %.3f ms)\n", rep.Latency*1e3)
	}
	return nil
}
