// Recommendation: the Figure 1 enterprise-analytics scenario — customers
// and transactions live in the RDBMS, clickstreams in the timeseries store,
// external events in the KV store. The program federates all three and
// clusters customers for next-best-offer targeting.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"polystorepp"
	"polystorepp/internal/datagen"
	"polystorepp/internal/hw"
	"polystorepp/internal/ir"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	data, err := datagen.GenerateRetail(rand.New(rand.NewSource(7)), 600, 5)
	if err != nil {
		return err
	}
	sys := polystore.New(
		polystore.WithRelational("db-retail", data.Relational),
		polystore.WithTimeseries("ts-clicks", data.Timeseries),
		polystore.WithKV("kv-events", data.KV),
		polystore.WithML("ml"),
		polystore.WithAccelerators(hw.Coprocessor, hw.NewFPGA(), hw.NewGPU()),
	)

	p := sys.NewProgram()
	g := p.Graph()
	// Per-customer spend from the RDBMS (aggregated at the source engine).
	spend, err := p.SQL("db-retail",
		"SELECT cid AS tcid, sum(amount) AS spend, count(*) AS n_tx FROM transactions GROUP BY cid")
	if err != nil {
		return err
	}
	// Per-customer click-rate summary from the timeseries store.
	clicks := g.Add(ir.OpTSWindow, "ts-clicks", map[string]any{"series_prefix": "clicks/"})
	// Customer master data.
	cust, err := p.SQL("db-retail", "SELECT cid, segment, tenure_days FROM customers")
	if err != nil {
		return err
	}
	j1 := p.Join("db-retail", cust, spend, "cid", "tcid")
	j2 := p.Join("db-retail", j1, clicks, "cid", "vpid")
	// Cluster customers on spend and click behaviour for offer targeting.
	clusters := p.KMeans("ml", j2, []string{"spend", "n_tx", "rate_mean"}, 4, 20)

	res, rep, err := sys.Run(ctx, p)
	if err != nil {
		return err
	}
	out := res.Values[clusters].Batch
	counts := map[int64]int{}
	cl, err := out.Ints(1)
	if err != nil {
		return err
	}
	for _, c := range cl {
		counts[c]++
	}
	fmt.Printf("clustered %d customers into %d offer segments: %v\n", out.Rows(), len(counts), counts)
	fmt.Printf("simulated latency %.3f ms, %d cross-engine migrations (%d bytes)\n",
		rep.Latency*1e3, rep.Migrations, rep.MigratedBytes)

	return nil
}
