// Package polystore is the public API of Polystore++: an accelerated
// polystore system for heterogeneous workloads (Singhal et al., ICDCS
// 2019). A System federates heterogeneous data-processing engines —
// relational, graph, text, timeseries, stream, key/value, array, and ML —
// behind one programming environment (the EIDE), compiles heterogeneous
// programs into a hierarchical IR, optimizes them across engine and
// hardware boundaries, and executes them on a middleware that offloads
// profitable operators to simulated hardware accelerators (GPU, FPGA,
// CGRA, TPU) and migrates data between engines over CSV, binary network
// pipes, or RDMA-style zero-copy transports.
//
// Quick start:
//
//	sys := polystore.New(
//	    polystore.WithRelational("db1", relStore),
//	    polystore.WithAccelerators(hw.Coprocessor, hw.NewFPGA(), hw.NewTPU()),
//	)
//	p := sys.NewProgram()
//	q, _ := p.SQL("db1", "SELECT pid, age FROM patients WHERE age > 60")
//	_ = q
//	res, report, _ := sys.Run(context.Background(), p)
package polystore

import (
	"context"
	"fmt"
	"net/http"

	"polystorepp/internal/adapter"
	"polystorepp/internal/backend"
	"polystorepp/internal/compiler"
	"polystorepp/internal/core"
	"polystorepp/internal/eide"
	"polystorepp/internal/graphstore"
	"polystorepp/internal/hw"
	"polystorepp/internal/kvstore"
	"polystorepp/internal/metrics"
	"polystorepp/internal/migrate"
	"polystorepp/internal/relational"
	"polystorepp/internal/server"
	"polystorepp/internal/streamstore"
	"polystorepp/internal/tenant"
	"polystorepp/internal/textstore"
	"polystorepp/internal/timeseries"
)

// Re-exported types so callers can use the facade without importing
// internal packages.
type (
	// Program is a heterogeneous program under construction.
	Program = eide.Program
	// Report is an execution report with simulated latency/energy.
	Report = core.Report
	// Results holds plan outputs.
	Results = core.Results
	// Options are compiler options (optimization level, acceleration).
	Options = compiler.Options
	// Value is a dataflow payload (batch or model).
	Value = adapter.Value
	// Ingest is one write routed to an engine (row append, timeseries
	// point, or KV put).
	Ingest = adapter.Ingest
	// ResultSink receives a plan's primary sink output incrementally while
	// the plan executes (see RunStream).
	ResultSink = core.ResultSink
	// ServeConfig tunes the HTTP serving subsystem (workers, queue depth,
	// deadlines, plan cache size, frontend defaults).
	ServeConfig = server.Config
	// NLBinding names the engines the served NL translator targets.
	NLBinding = server.NLBinding
	// TenantQuota is one tenant's rate limit, burst allowance and
	// weighted-fair admission weight (ServeConfig.TenantQuotas).
	TenantQuota = tenant.Quota
	// Backend is a pluggable storage backend hosting the engines' stores
	// ("memory" or "wal"); open one with OpenBackend, attach stores, Recover,
	// then pass it to WithBackend so acknowledged writes wait on its
	// durability barrier.
	Backend = backend.Backend
	// BackendConfig parameterizes OpenBackend (data dir, WAL sync policy,
	// snapshot trigger).
	BackendConfig = backend.Config
	// BackendCapabilities describes what a backend executes natively
	// (pushdown negotiation) and whether it persists.
	BackendCapabilities = backend.Capabilities
	// WALSyncPolicy selects when the durable backend fsyncs relative to
	// write acknowledgement ("group", "interval", "off").
	WALSyncPolicy = backend.SyncPolicy
)

// OpenBackend constructs a storage backend of the named kind ("memory",
// "wal"). See backend.Open.
func OpenBackend(kind string, cfg BackendConfig) (Backend, error) {
	return backend.Open(kind, cfg)
}

// BackendKinds lists the registered storage backend kinds.
func BackendKinds() []string { return backend.Kinds() }

// ParseWALSyncPolicy validates a WAL sync policy flag value; empty selects
// the group-commit default.
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) {
	return backend.ParseSyncPolicy(s)
}

// BackendHasState reports whether dir holds persisted state from a previous
// run — the boot-time fork between recovering and seeding fresh demo data.
func BackendHasState(dir string) bool { return backend.HasState(dir) }

// ParseTenantQuotas parses a "tenant=rate:burst[:weight],..." spec into a
// ServeConfig.TenantQuotas map — the format polyserve's -tenant-quota flag
// accepts.
func ParseTenantQuotas(spec string) (map[string]TenantQuota, error) {
	return tenant.ParseQuotas(spec)
}

// System is one Polystore++ deployment: engines + adapters + devices +
// middleware. Construct with New.
type System struct {
	runtime   *core.Runtime
	relations map[string]*relational.Engine
	opts      Options
	seed      int64

	pendingAdapters []adapter.Adapter
	host            *hw.Device
	accels          []*hw.Device
	mode            hw.Mode
	migrator        *migrate.Migrator
	rtOpts          []core.Option
}

// Option configures a System.
type Option func(*System)

// WithRelational registers a relational store under an engine name.
func WithRelational(name string, s *relational.Store) Option {
	return func(sys *System) {
		e := relational.NewEngine(s)
		sys.relations[name] = e
		sys.pendingAdapters = append(sys.pendingAdapters, adapter.NewRelational(name, e))
	}
}

// WithGraph registers a graph store.
func WithGraph(name string, s *graphstore.Store) Option {
	return func(sys *System) {
		sys.pendingAdapters = append(sys.pendingAdapters, adapter.NewGraph(name, s))
	}
}

// WithText registers a text store.
func WithText(name string, s *textstore.Store) Option {
	return func(sys *System) {
		sys.pendingAdapters = append(sys.pendingAdapters, adapter.NewText(name, s))
	}
}

// WithTimeseries registers a timeseries store.
func WithTimeseries(name string, s *timeseries.Store) Option {
	return func(sys *System) {
		sys.pendingAdapters = append(sys.pendingAdapters, adapter.NewTimeseries(name, s))
	}
}

// WithStream registers a stream store.
func WithStream(name string, s *streamstore.Store) Option {
	return func(sys *System) {
		sys.pendingAdapters = append(sys.pendingAdapters, adapter.NewStream(name, s))
	}
}

// WithKV registers a key/value store.
func WithKV(name string, s *kvstore.Store) Option {
	return func(sys *System) {
		sys.pendingAdapters = append(sys.pendingAdapters, adapter.NewKV(name, s))
	}
}

// WithML registers an ML/DL engine instance.
func WithML(name string) Option {
	return func(sys *System) {
		sys.pendingAdapters = append(sys.pendingAdapters, adapter.NewML(name, sys.seed))
	}
}

// WithAccelerators attaches hardware accelerator models in the given
// deployment mode.
func WithAccelerators(mode hw.Mode, devices ...*hw.Device) Option {
	return func(sys *System) {
		sys.mode = mode
		sys.accels = append(sys.accels, devices...)
	}
}

// WithCompilerOptions sets the default compiler options for Run.
func WithCompilerOptions(o Options) Option {
	return func(sys *System) { sys.opts = o }
}

// WithSeed fixes the RNG seed used by ML adapters (default 1).
func WithSeed(seed int64) Option {
	return func(sys *System) { sys.seed = seed }
}

// WithExecutorWorkers bounds concurrent node executions per engine queue in
// the middleware's DAG scheduler (default 4).
func WithExecutorWorkers(n int) Option {
	return func(sys *System) { sys.rtOpts = append(sys.rtOpts, core.WithEngineWorkers(n)) }
}

// WithSequentialExecutor forces one-node-at-a-time plan execution — the
// baseline for scheduler ablations.
func WithSequentialExecutor() Option {
	return func(sys *System) { sys.rtOpts = append(sys.rtOpts, core.WithSequentialExecutor()) }
}

// WithMigrator overrides the data migrator (e.g. to add serialization
// offload).
func WithMigrator(m *migrate.Migrator) Option {
	return func(sys *System) { sys.migrator = m }
}

// WithBackend attaches a storage backend's durability barrier to the
// runtime: Ingest acknowledges a write only after the backend reports it
// durable. The caller owns the backend lifecycle (Attach/Recover/Start
// before building the System, Close after).
func WithBackend(b Backend) Option {
	return func(sys *System) {
		if b != nil {
			sys.rtOpts = append(sys.rtOpts, core.WithDurabilityBarrier(b))
		}
	}
}

// New builds a System. The default compiler options enable all
// optimization levels and acceleration when accelerators are attached.
func New(opts ...Option) *System {
	sys := &System{
		relations: make(map[string]*relational.Engine),
		host:      hw.NewHostCPU(),
		mode:      hw.Coprocessor,
		seed:      1,
		opts:      Options{Level: 3},
	}
	for _, o := range opts {
		o(sys)
	}
	if len(sys.accels) > 0 {
		sys.opts.Accel = true
	}
	rtOpts := sys.rtOpts
	if len(sys.accels) > 0 {
		rtOpts = append(rtOpts, core.WithAccelerators(sys.mode, sys.accels...))
	}
	if sys.migrator != nil {
		rtOpts = append(rtOpts, core.WithMigrator(sys.migrator))
	}
	sys.runtime = core.NewRuntime(sys.host, rtOpts...)
	for _, a := range sys.pendingAdapters {
		sys.runtime.Register(a)
	}
	return sys
}

// NewProgram starts an empty heterogeneous program.
func (sys *System) NewProgram() *Program { return eide.NewProgram() }

// Run compiles and executes the program with the system's default options.
func (sys *System) Run(ctx context.Context, p *Program) (*Results, *Report, error) {
	return sys.RunWith(ctx, p, sys.opts)
}

// RunWith compiles and executes the program with explicit options.
func (sys *System) RunWith(ctx context.Context, p *Program, opts Options) (*Results, *Report, error) {
	plan, err := compiler.Compile(p.Graph(), opts)
	if err != nil {
		return nil, nil, err
	}
	return sys.runtime.Execute(ctx, plan)
}

// RunStream compiles and executes the program while streaming the first
// sink's result batches to sink as the terminal operator produces them —
// the partial-result path POST /query/stream serves over HTTP. The returned
// Results and Report are identical to Run's, and the concatenation of the
// streamed batches equals the sink value in Results.
func (sys *System) RunStream(ctx context.Context, p *Program, sink ResultSink) (*Results, *Report, error) {
	plan, err := compiler.Compile(p.Graph(), sys.opts)
	if err != nil {
		return nil, nil, err
	}
	return sys.runtime.ExecuteStream(ctx, plan, sink)
}

// Query is a convenience: run one SQL statement on a registered relational
// engine directly (no middleware involvement).
func (sys *System) Query(ctx context.Context, engine, sql string) (Value, error) {
	e, ok := sys.relations[engine]
	if !ok {
		return Value{}, fmt.Errorf("polystore: unknown relational engine %q", engine)
	}
	b, _, err := e.Query(ctx, sql)
	if err != nil {
		return Value{}, err
	}
	return Value{Batch: b}, nil
}

// Ingest routes one write to a registered engine — the same path the
// serving layer's POST /ingest uses. The write bumps the target store's
// data version, so cached results over the written data stop being served
// while results over other stores stay cached.
func (sys *System) Ingest(ctx context.Context, engine string, w Ingest) error {
	return sys.runtime.Ingest(ctx, engine, w)
}

// Metrics exposes the middleware's runtime-statistics registry.
func (sys *System) Metrics() *metrics.Registry { return sys.runtime.Metrics() }

// DataVersion returns the sum of the registered stores' mutation counters.
// Any store write changes it. (The serving layer's result cache keys on
// finer-grained per-engine version vectors — see core.Runtime.VersionVector
// — so this global sum is observability, not the invalidation key.)
func (sys *System) DataVersion() uint64 { return sys.runtime.DataVersion() }

// Host returns the host CPU device model.
func (sys *System) Host() *hw.Device { return sys.host }

// Accelerators returns the attached accelerator devices.
func (sys *System) Accelerators() []*hw.Device { return sys.accels }

// Handler returns the HTTP serving subsystem over this system: POST /query
// (sql, nl, text and multi-engine program frontends through the plan cache
// and admission-controlled worker pool), POST /query/stream (the same
// frontends with NDJSON partial-result delivery), POST /ingest, GET
// /healthz, /metrics and /stats. The handler shares the system's runtime,
// so concurrent requests execute against the same engines and accelerator
// models.
func (sys *System) Handler(cfg ServeConfig) http.Handler {
	return server.New(sys.runtime, sys.opts, cfg)
}

// Serve runs the HTTP serving subsystem on addr until ctx is canceled, then
// drains in-flight requests and shuts down.
func (sys *System) Serve(ctx context.Context, addr string, cfg ServeConfig) error {
	return server.ListenAndServe(ctx, addr, server.New(sys.runtime, sys.opts, cfg))
}

// NLTranslator builds a natural-language query translator bound to the
// given engine names (§IV-A-e).
func (sys *System) NLTranslator(relationalEngine, timeseriesEngine, textEngine, mlEngine string) *eide.NLTranslator {
	return eide.NewNLTranslator(relationalEngine, timeseriesEngine, textEngine, mlEngine)
}
